"""The cascade executor: early-exit serving over the existing request path.

A :class:`CascadeExecutor` wraps a serving backend — a single
:class:`~repro.serving.frontend.ServingFrontend` or a whole
:class:`~repro.cluster.router.ClusterRouter` — and serves every request
through a :class:`~repro.cascade.spec.CascadeSpec`:

1. the batch is submitted to stage 0's model through the backend's normal
   path (admission, queueing, coalescing, backlog-aware placement —
   nothing is bypassed);
2. at completion, the stage's exit rule decides how many samples take
   this answer: real per-sample softmax confidences when the request
   carried host data, a seeded Binomial draw from the measured
   :class:`~repro.cascade.confidence.CascadeProfile` otherwise;
3. the remnant is re-enqueued as a *deadline-inheriting follow-up
   request*: fresh request id, arrival = now, the chain's original
   absolute deadline and first-arrival time
   (``InferenceRequest.origin_arrival_s``) — so a follow-up is a
   first-class request (exactly-once ledger, drains, crashes, retries all
   apply) whose end-to-end latency honestly counts from the first hop;
4. if the deadline has already passed when a remnant would escalate, it
   takes the current stage's answer instead (a *forced exit* — the
   accuracy-graceful alternative to shedding); if the escalation itself
   is shed downstream, the previous stage's answer stands (a
   *fallback*).

Placement: each stage's ``device_bias`` is installed as a per-model
preference on every node's :class:`~repro.sched.backlog.
BacklogAwareScheduler` (cheap stage → CPU/iGPU, heavy stage → dGPU), and
every adaptive threshold change invalidates that node's stage-0 decision
cells.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro.errors import SchedulerError
from repro.cascade.chain import CascadeChain, CascadeResult
from repro.cascade.confidence import CascadeProfile
from repro.cascade.controller import ThresholdController
from repro.cascade.spec import CascadeSpec
from repro.cascade.telemetry import CascadeTelemetry
from repro.nn.activations import softmax
from repro.rng import ensure_rng
from repro.workloads.requests import InferenceRequest, RequestTrace

__all__ = ["CascadeExecutor"]

#: Default base for executor-allocated request ids, far above any trace's
#: own ids so cascade requests never collide in a router's ledger.
_ID_BASE = 1_000_000_000

#: Node key used when the backend is a single frontend (no node names).
_LOCAL_KEY = "serving"


class CascadeExecutor:
    """Runs a cascade over a serving frontend or cluster router.

    Parameters
    ----------
    backend:
        A ``ServingFrontend`` or ``ClusterRouter`` (duck-typed: needs
        ``loop``, ``specs``, ``submit_request``, ``run``).  Every stage
        model must already be deployed on it.
    cascade:
        The stage chain (see :class:`CascadeSpec`).
    profile:
        Measured confidence profile for virtual (no-host-data) requests
        and the accuracy proxy (see :func:`~repro.cascade.confidence.
        profile_cascade`).
    controller:
        Adaptive stage-0 threshold controller; None pins thresholds to
        the spec's static exit rules.
    slo_s:
        The relative SLO the controller compares tails against; None
        falls back to stage 0's configured serving deadline.
    rng:
        Seed for the Binomial exit draws — same seed, same trace, same
        per-stage exit counts, exactly.
    """

    def __init__(
        self,
        backend,
        cascade: CascadeSpec,
        profile: CascadeProfile,
        controller: "ThresholdController | None" = None,
        slo_s: "float | None" = None,
        rng: "int | np.random.Generator | None" = None,
        policy: str = "throughput",
        id_base: int = _ID_BASE,
    ):
        deployed = set(backend.specs)
        missing = [n for n in cascade.model_names if n not in deployed]
        if missing:
            raise SchedulerError(
                f"cascade {cascade.name!r} needs models not deployed on the "
                f"backend: {missing} (deployed: {sorted(deployed)})"
            )
        self.backend = backend
        self.loop = backend.loop
        self.cascade = cascade
        self.profile = profile
        self.controller = controller
        self.policy = policy
        self.telemetry = CascadeTelemetry(cascade=cascade.name)
        self.chains: "list[CascadeChain]" = []
        self._rng = ensure_rng(rng)
        self._next_id = int(id_base)
        self._is_cluster = hasattr(backend, "nodes")

        if slo_s is None:
            entry_cfg = self._frontends()[0][1].slo_for(cascade.entry.spec.name)
            slo_s = entry_cfg.deadline_s
        self.slo_s = slo_s

        # Install per-stage placement bias on every node's backlog
        # scheduler (cheap stage -> CPU/iGPU, heavy stage -> dGPU).
        for _key, frontend in self._frontends():
            for stage in cascade.stages:
                if stage.device_bias is not None:
                    frontend.backlog.set_model_preference(
                        stage.spec.name, stage.device_bias
                    )

        # Surface cascade counters in the backend's telemetry snapshots.
        backend.telemetry.cascade = self.telemetry

        # Shed counters per node, for the controller's shed-delta signal.
        self._last_shed = {
            key: frontend.telemetry.n_shed
            for key, frontend in self._frontends()
        }

    # -- backend views -----------------------------------------------------

    def _frontends(self) -> "list[tuple[str, object]]":
        """``(node_key, frontend)`` pairs the executor steers."""
        if self._is_cluster:
            return [(node.name, node.frontend) for node in self.backend.nodes]
        return [(_LOCAL_KEY, self.backend)]

    def _node_key(self, response) -> str:
        """The controller key for the node that served a response."""
        if self._is_cluster:
            return response.node_name if response.node_name else _LOCAL_KEY
        return _LOCAL_KEY

    @staticmethod
    def _end_s(response) -> float:
        """A served response's completion time (cluster responses proxy)."""
        end = getattr(response, "end_s", None)
        if end is None and getattr(response, "inner", None) is not None:
            end = response.inner.end_s
        return end

    @staticmethod
    def _scores(response) -> "np.ndarray | None":
        """A served response's raw class scores, if host data was run."""
        scores = getattr(response, "scores", None)
        if scores is None and getattr(response, "inner", None) is not None:
            scores = response.inner.scores
        return scores

    def _alloc_id(self) -> int:
        rid = self._next_id
        self._next_id += 1
        return rid

    # -- thresholds --------------------------------------------------------

    def threshold_for(self, stage_index: int, node_key: str) -> float:
        """The exit threshold stage ``stage_index`` applies on one node.

        Stage 0 is the adaptive lever (per-node, controller-tuned);
        deeper stages keep their static rule thresholds.
        """
        rule = self.cascade.stage(stage_index).exit_rule
        if rule is None:
            raise SchedulerError("the final stage has no exit threshold")
        if stage_index == 0 and self.controller is not None:
            return self.controller.threshold(node_key)
        return rule.threshold

    # -- submission --------------------------------------------------------

    def submit(
        self,
        batch: "int | None" = None,
        x: "np.ndarray | None" = None,
        deadline_s: "float | None" = None,
        arrival_s: "float | None" = None,
    ) -> CascadeChain:
        """Submit one batch to the cascade; returns a pending chain.

        ``x`` is an optional host batch — with it, exit decisions use the
        real per-sample confidences of the returned scores; without it,
        exits are drawn from the measured profile.  ``deadline_s`` is the
        relative SLO from arrival (None uses the executor's ``slo_s``).
        """
        if x is not None:
            x = np.ascontiguousarray(x, dtype=np.float32)
            if batch is not None and batch != x.shape[0]:
                raise SchedulerError(
                    f"batch {batch} disagrees with x.shape[0]={x.shape[0]}"
                )
            batch = int(x.shape[0])
        if batch is None or batch <= 0:
            raise SchedulerError(f"submit needs a positive batch, got {batch}")
        arrival = self.loop.now if arrival_s is None else float(arrival_s)
        relative = deadline_s if deadline_s is not None else self.slo_s
        deadline = None if relative is None else arrival + relative
        chain = CascadeChain(
            chain_id=len(self.chains),
            batch=batch,
            origin_arrival_s=arrival,
            deadline_s=deadline,
            policy=self.policy,
            x=x,
        )
        self.chains.append(chain)
        self.telemetry.n_chains += 1
        self._submit_stage(chain, 0, batch, x, arrival)
        return chain

    def serve_trace(
        self,
        trace: RequestTrace,
        control_every_s: "float | None" = None,
        control_tail_s: float = 0.5,
    ) -> CascadeResult:
        """Serve a whole trace through the cascade and drain the loop.

        Each trace request becomes one chain entering at stage 0 (the
        request's ``model`` field is ignored — the cascade decides who
        runs what); its own deadline wins over the executor's ``slo_s``.
        With ``control_every_s`` set (and a controller), adaptive ticks
        run through ``control_tail_s`` past the last arrival.
        """
        for request in trace:
            relative = (
                None
                if request.deadline_s is None
                else request.deadline_s - request.arrival_s
            )
            self.submit(
                batch=request.batch,
                deadline_s=relative,
                arrival_s=request.arrival_s,
            )
        if control_every_s is not None and self.controller is not None:
            self.schedule_control(
                until=trace.horizon_s + control_tail_s, every_s=control_every_s
            )
        self.backend.run()
        return self.result()

    def _submit_stage(
        self,
        chain: CascadeChain,
        stage_index: int,
        batch: int,
        x: "np.ndarray | None",
        arrival_s: float,
    ) -> None:
        stage = self.cascade.stage(stage_index)
        request = InferenceRequest(
            request_id=self._alloc_id(),
            arrival_s=arrival_s,
            model=stage.spec.name,
            batch=batch,
            policy=chain.policy,
            deadline_s=chain.deadline_s,
            origin_arrival_s=chain.origin_arrival_s if stage_index else None,
        )
        response = self.backend.submit_request(request, x)
        response.on_done = partial(self._on_stage_done, chain, stage_index)
        if response.done:  # defensive: a synchronous resolution never waits
            response.on_done = None
            self._on_stage_done(chain, stage_index, response)

    # -- stage resolution --------------------------------------------------

    def _on_stage_done(
        self, chain: CascadeChain, stage_index: int, response
    ) -> None:
        now = self.loop.now
        if response.status == "shed":
            self._on_stage_shed(chain, stage_index, response, now)
            return

        end = self._end_s(response)
        batch = response.request.batch
        chain.last_end_s = end
        chain.n_stages_run += 1

        if stage_index == self.cascade.n_stages - 1:
            # The heavy model answers everything that reaches it.
            self._record_exit(chain, stage_index, batch, agreement=1.0)
            self._resolve(chain, stage_index, end)
            return

        stage = self.cascade.stage(stage_index)
        rule = stage.exit_rule
        key = self._node_key(response)
        theta = self.threshold_for(stage_index, key)
        scores = self._scores(response)

        if scores is not None and chain.x is not None:
            # Real data: exits follow the actual per-sample confidences.
            proba = softmax(np.asarray(scores, dtype=np.float64))
            if proba.shape[1] < 2:
                conf = proba[:, 0]
            elif rule.kind == "top1":
                conf = np.max(proba, axis=1)
            else:
                part = np.partition(proba, -2, axis=1)
                conf = part[:, -1] - part[:, -2]
            exit_mask = conf >= theta
            n_exit = int(exit_mask.sum())
            x_next = chain.x[~exit_mask]
        else:
            # Virtual data: a seeded Binomial draw from the measured
            # exit fraction — simulated faithfully, deterministically.
            p_exit = self.profile.stage(stage_index).exit_fraction(rule.kind, theta)
            n_exit = int(self._rng.binomial(batch, p_exit))
            x_next = None

        n_escalate = batch - n_exit
        stage_profile = self.profile.stage(stage_index)
        if n_exit:
            self._record_exit(
                chain, stage_index, n_exit,
                agreement=stage_profile.agreement(rule.kind, theta),
            )
        if n_escalate == 0:
            self._resolve(chain, stage_index, end)
            return

        if chain.deadline_s is not None and now >= chain.deadline_s:
            # Deadline already blown: answering the remnant here (with the
            # cheap stage's lower agreement) beats shedding it outright —
            # the accuracy-graceful degradation path.
            self._record_exit(
                chain, stage_index, n_escalate,
                agreement=stage_profile.agreement_below(rule.kind, theta),
            )
            chain.forced = True
            self.telemetry.n_forced_chains += 1
            self.telemetry.n_forced_samples += n_escalate
            self._resolve(chain, stage_index, end)
            return

        chain.x = x_next
        self.telemetry.record_escalation(stage_index, n_escalate)
        self._submit_stage(chain, stage_index + 1, n_escalate, x_next, now)

    def _on_stage_shed(
        self, chain: CascadeChain, stage_index: int, response, now: float
    ) -> None:
        if stage_index == 0:
            # Nothing answered anything: the chain itself is shed.
            chain.status = "shed"
            chain.shed_reason = response.shed_reason
            chain.end_s = now
            self.telemetry.n_shed_chains += 1
            return
        # A shed escalation falls back to the previous stage's answer: the
        # remnant already has one, it just is not the heavy model's.
        prev = stage_index - 1
        rule = self.cascade.stage(prev).exit_rule
        theta = self.threshold_for(prev, self._node_key(response))
        self._record_exit(
            chain, prev, response.request.batch,
            agreement=self.profile.stage(prev).agreement_below(rule.kind, theta),
        )
        chain.fallback = True
        self.telemetry.n_fallback_chains += 1
        self._resolve(chain, prev, chain.last_end_s)

    def _record_exit(
        self, chain: CascadeChain, stage: int, samples: int, agreement: float
    ) -> None:
        chain.exits[stage] = chain.exits.get(stage, 0) + samples
        self.telemetry.record_exit(stage, samples, agreement)

    def _resolve(self, chain: CascadeChain, stage: int, end_s: float) -> None:
        chain.status = "ok"
        chain.answer_stage = stage
        chain.end_s = end_s
        self.telemetry.record_answer(stage, end_s - chain.origin_arrival_s)

    # -- adaptive control --------------------------------------------------

    def control_tick(self) -> None:
        """One adaptive-threshold step over every node (see controller).

        Reads each node's queue depth, recent p99 and shed delta; a
        changed threshold invalidates that node's stage-0 decision-cache
        cells so stale placements cannot outlive the retune.
        """
        if self.controller is None:
            raise SchedulerError("executor was built without a controller")
        now = self.loop.now
        entry_model = self.cascade.entry.spec.name
        for key, frontend in self._frontends():
            stats = frontend.node_stats()
            shed_now = frontend.telemetry.n_shed
            shed_delta = shed_now - self._last_shed[key]
            self._last_shed[key] = shed_now
            _theta, changed = self.controller.tick(
                key,
                now,
                depth=stats.queued,
                recent_p99_s=stats.recent_p99_s,
                slo_s=self.slo_s,
                shed_delta=shed_delta,
            )
            if changed:
                frontend.backlog.invalidate_model(entry_model)

    def schedule_control(self, until: float, every_s: float = 0.05):
        """Tick the controller every ``every_s`` through ``until``."""
        if self.controller is None:
            raise SchedulerError("executor was built without a controller")
        return self.loop.schedule_repeating(
            every_s, lambda _loop: self.control_tick(), until=until,
            label="cascade-control",
        )

    # -- driving / results -------------------------------------------------

    def run(self, until: "float | None" = None) -> float:
        """Drive the backend's event loop."""
        return self.backend.run(until=until)

    def result(self) -> CascadeResult:
        """Every chain plus the cascade telemetry sink."""
        return CascadeResult(chains=list(self.chains), telemetry=self.telemetry)

    @property
    def n_pending(self) -> int:
        """Chains submitted but not yet resolved."""
        return sum(1 for c in self.chains if not c.done)

    def stats(self) -> dict:
        """Cascade snapshot plus the controller's state, if any."""
        out = self.telemetry.snapshot()
        if self.controller is not None:
            out["controller"] = self.controller.snapshot()
        return out
