"""Empirical confidence profiles: what a stage's exit rule will actually do.

The serving layer mostly moves *virtual* requests (batch sizes without
host data), so the executor cannot always compute a per-sample softmax at
run time.  Instead of faking confidences, a :class:`CascadeProfile` is
measured once from the real models: run a held-out probe set through every
stage, record each sample's genuine top-1 probability and top1−top2
margin, and whether the stage's prediction agrees with the final stage's.
From those arrays a profile answers, for any threshold θ:

* ``exit_fraction(kind, θ)`` — what fraction of traffic exits at θ (the
  Binomial parameter for virtual batches);
* ``agreement(kind, θ)`` — among exiting samples, how often the stage's
  answer matches the final stage's (the accuracy proxy);
* ``agreement_below(kind, θ)`` — the same among *non*-exiting samples
  (what a forced exit under deadline pressure actually costs).

Requests that do carry host data bypass the profile: the executor
computes real per-sample confidences from the returned scores.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SchedulerError
from repro.cascade.spec import EXIT_KINDS, CascadeSpec

__all__ = ["StageProfile", "CascadeProfile", "profile_cascade"]


@dataclass(frozen=True)
class StageProfile:
    """One non-final stage's measured confidence behaviour on the probe set.

    ``top1`` / ``margin`` are per-probe-sample confidence values; ``agree``
    marks samples whose stage prediction matches the final stage's.
    """

    top1: np.ndarray
    margin: np.ndarray
    agree: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.top1)
        if n == 0:
            raise SchedulerError("a stage profile needs at least one probe sample")
        if len(self.margin) != n or len(self.agree) != n:
            raise SchedulerError(
                "profile arrays must align: "
                f"top1={n}, margin={len(self.margin)}, agree={len(self.agree)}"
            )

    @property
    def n_probe(self) -> int:
        return len(self.top1)

    def values(self, kind: str) -> np.ndarray:
        """The confidence array for one exit-rule kind."""
        if kind not in EXIT_KINDS:
            raise SchedulerError(f"unknown confidence kind {kind!r}; known: {EXIT_KINDS}")
        return self.top1 if kind == "top1" else self.margin

    def exit_fraction(self, kind: str, threshold: float) -> float:
        """Fraction of probe samples whose confidence clears ``threshold``."""
        return float(np.mean(self.values(kind) >= threshold))

    def agreement(self, kind: str, threshold: float) -> float:
        """Final-stage agreement among exiting samples (1.0 if none exit).

        The vacuous 1.0 keeps the accuracy proxy well-defined at thresholds
        so high that nothing leaves early — zero samples exit, so zero
        weight is contributed anyway.
        """
        mask = self.values(kind) >= threshold
        if not mask.any():
            return 1.0
        return float(np.mean(self.agree[mask]))

    def agreement_below(self, kind: str, threshold: float) -> float:
        """Final-stage agreement among samples the rule would escalate.

        This is the accuracy a *forced* exit (deadline already blown, the
        remnant answered here instead of escalating) actually delivers.
        1.0 if nothing falls below the threshold.
        """
        mask = self.values(kind) < threshold
        if not mask.any():
            return 1.0
        return float(np.mean(self.agree[mask]))

    def quantile(self, kind: str, q: float) -> float:
        """The q-quantile (0..1) of the stage's confidence distribution.

        Calibration helper: a threshold at quantile q makes roughly a
        ``1 - q`` fraction of traffic exit, whatever the (possibly
        untrained) model's absolute confidence scale is.
        """
        if not 0.0 <= q <= 1.0:
            raise SchedulerError(f"quantile must be in [0, 1], got {q}")
        return float(np.quantile(self.values(kind), q))


class CascadeProfile:
    """Per-stage :class:`StageProfile`s for one cascade's non-final stages."""

    def __init__(self, cascade: str, stages: "dict[int, StageProfile]"):
        if not stages:
            raise SchedulerError("a cascade profile needs at least one stage")
        self.cascade = cascade
        self._stages = dict(stages)

    @property
    def stage_indices(self) -> "tuple[int, ...]":
        return tuple(sorted(self._stages))

    @property
    def n_probe(self) -> int:
        return next(iter(self._stages.values())).n_probe

    def stage(self, index: int) -> StageProfile:
        try:
            return self._stages[index]
        except KeyError:
            raise SchedulerError(
                f"no profile for stage {index} of cascade {self.cascade!r} "
                f"(profiled: {self.stage_indices})"
            ) from None


def profile_cascade(
    cascade: CascadeSpec,
    models: "dict[str, object]",
    probe_x: np.ndarray,
) -> CascadeProfile:
    """Measure a cascade's confidence profile on a held-out probe set.

    ``models`` maps stage model names to *built* :class:`~repro.nn.model.
    Sequential` instances (the same networks the dispatcher deploys).
    Every non-final stage is run on ``probe_x`` for real — the profile's
    exit fractions and agreement rates come from genuine softmax outputs,
    not synthetic distributions.
    """
    if probe_x.ndim < 2 or probe_x.shape[0] == 0:
        raise SchedulerError(
            f"probe set must be a non-empty batch, got shape {probe_x.shape}"
        )
    missing = [n for n in cascade.model_names if n not in models]
    if missing:
        raise SchedulerError(
            f"profile_cascade is missing built models for stages: {missing}"
        )
    final_pred = models[cascade.final.spec.name].predict(probe_x)
    stages: "dict[int, StageProfile]" = {}
    for i, stage in enumerate(cascade.stages[:-1]):
        model = models[stage.spec.name]
        top1, margin = model.confidence(probe_x)
        agree = model.predict(probe_x) == final_pred
        stages[i] = StageProfile(
            top1=np.asarray(top1, dtype=np.float64),
            margin=np.asarray(margin, dtype=np.float64),
            agree=np.asarray(agree, dtype=bool),
        )
    return CascadeProfile(cascade.name, stages)
