"""Cascade serving: adaptive early-exit chains over heterogeneous devices.

Serve a cheap model first and escalate only low-confidence samples to the
heavy one (MultiTASC++, arXiv:2412.04147), with the exit threshold
retuned per node every control tick from backlog depth, SLO headroom and
shed pressure — under overload the cascade degrades *accuracy* smoothly
before admission control starts shedding.

* :mod:`~repro.cascade.spec` — the static chain description.
* :mod:`~repro.cascade.confidence` — measured exit/agreement profiles.
* :mod:`~repro.cascade.controller` — the adaptive threshold controller.
* :mod:`~repro.cascade.executor` — escalation over the serving/cluster path.
* :mod:`~repro.cascade.chain` — per-request chains and aggregate results.
* :mod:`~repro.cascade.telemetry` — exit histograms, accuracy proxy.
* :mod:`~repro.cascade.presets` — the default MNIST cascade, calibrated.
"""

from repro.cascade.chain import CascadeChain, CascadeResult
from repro.cascade.confidence import (
    CascadeProfile,
    StageProfile,
    profile_cascade,
)
from repro.cascade.controller import ControllerConfig, ThresholdController
from repro.cascade.executor import CascadeExecutor
from repro.cascade.presets import (
    build_stage_models,
    calibrated_controller_config,
    default_cascade,
    default_profile,
    probe_for,
)
from repro.cascade.spec import CascadeSpec, CascadeStage, ExitRule
from repro.cascade.telemetry import CascadeTelemetry

__all__ = [
    "ExitRule",
    "CascadeStage",
    "CascadeSpec",
    "StageProfile",
    "CascadeProfile",
    "profile_cascade",
    "ControllerConfig",
    "ThresholdController",
    "CascadeChain",
    "CascadeResult",
    "CascadeTelemetry",
    "CascadeExecutor",
    "default_cascade",
    "default_profile",
    "build_stage_models",
    "probe_for",
    "calibrated_controller_config",
]
