"""Cascade telemetry: where traffic exits, what escalation costs.

One :class:`CascadeTelemetry` sink per executor, attachable to the
serving/fleet telemetry (``ServingTelemetry.cascade`` /
``FleetTelemetry.cascade``) so cascade counters ride along in every
``snapshot()`` / ``stats()`` rollup:

* per-stage exit histogram (samples answered at each stage) and
  escalation counts (samples forwarded from each stage);
* forced exits (deadline pressure answered a remnant early) and
  fallbacks (an escalation was shed, the previous stage's answer stood);
* an accuracy proxy — exit-weighted agreement-with-final-stage, measured
  on the held-out probe set (see :mod:`repro.cascade.confidence`);
* the end-to-end latency split: mean time-to-answer by exit stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CascadeTelemetry"]


@dataclass
class CascadeTelemetry:
    """Counters and accumulators for one cascade executor."""

    cascade: str = ""
    n_chains: int = 0              # chains submitted
    n_resolved: int = 0            # chains answered (ok)
    n_shed_chains: int = 0         # chains with no answer (stage-0 shed)
    n_forced_chains: int = 0       # chains whose remnant was forced out
    n_fallback_chains: int = 0     # chains answered by a pre-shed stage
    n_escalations: int = 0         # escalation requests submitted
    exits: "dict[int, int]" = field(default_factory=dict)       # stage -> samples
    escalated: "dict[int, int]" = field(default_factory=dict)   # stage -> samples
    n_forced_samples: int = 0      # samples answered early under deadline
    # Accuracy proxy: agreement-weighted exits (probe-set agreement at the
    # threshold each exit actually used; final-stage exits weigh 1.0).
    agreement_weight: float = 0.0
    answered_samples: int = 0
    # Latency split: per exit stage, sum of chain time-to-answer seconds.
    answer_latency_s: "dict[int, float]" = field(default_factory=dict)
    answer_chains: "dict[int, int]" = field(default_factory=dict)

    # -- recording ---------------------------------------------------------

    def record_exit(self, stage: int, samples: int, agreement: float) -> None:
        """``samples`` answered at ``stage`` with probe agreement ``agreement``."""
        if samples <= 0:
            return
        self.exits[stage] = self.exits.get(stage, 0) + samples
        self.agreement_weight += samples * agreement
        self.answered_samples += samples

    def record_escalation(self, stage: int, samples: int) -> None:
        """``samples`` forwarded from ``stage`` to the next one."""
        self.escalated[stage] = self.escalated.get(stage, 0) + samples
        self.n_escalations += 1

    def record_answer(self, stage: int, latency_s: float) -> None:
        """One chain resolved with its deepest answer at ``stage``."""
        self.n_resolved += 1
        self.answer_latency_s[stage] = (
            self.answer_latency_s.get(stage, 0.0) + latency_s
        )
        self.answer_chains[stage] = self.answer_chains.get(stage, 0) + 1

    # -- derived -----------------------------------------------------------

    @property
    def escalation_rate(self) -> float:
        """Fraction of answered samples that passed through an escalation."""
        total = self.answered_samples
        if not total:
            return 0.0
        return sum(self.escalated.values()) / total

    @property
    def accuracy_proxy(self) -> float:
        """Exit-weighted probe-set agreement with the final stage (0..1).

        1.0 means every sample got the answer the heavy model would have
        given; lowering exit thresholds under overload trades this down
        smoothly instead of shedding.
        """
        if not self.answered_samples:
            return 1.0
        return self.agreement_weight / self.answered_samples

    def exit_shares(self) -> "dict[int, float]":
        """Fraction of answered samples that exited at each stage."""
        total = self.answered_samples
        if not total:
            return {}
        return {k: v / total for k, v in sorted(self.exits.items())}

    def latency_split_s(self) -> "dict[int, float]":
        """Mean chain time-to-answer by exit stage, in seconds."""
        return {
            k: self.answer_latency_s[k] / self.answer_chains[k]
            for k in sorted(self.answer_chains)
        }

    def snapshot(self) -> dict:
        """Plain-dict summary, merged into serving/fleet snapshots."""
        out: dict = {
            "name": self.cascade,
            "chains": self.n_chains,
            "resolved": self.n_resolved,
            "shed_chains": self.n_shed_chains,
            "forced_chains": self.n_forced_chains,
            "fallback_chains": self.n_fallback_chains,
            "escalations": self.n_escalations,
            "exits": dict(sorted(self.exits.items())),
            "escalated": dict(sorted(self.escalated.items())),
            "forced_samples": self.n_forced_samples,
            "escalation_rate": self.escalation_rate,
            "accuracy_proxy": self.accuracy_proxy,
        }
        split = self.latency_split_s()
        if split:
            out["answer_latency_ms"] = {k: v * 1e3 for k, v in split.items()}
        return out
