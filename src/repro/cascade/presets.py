"""Ready-made cascades over the zoo, with measured calibration.

The default chain is the paper's two MNIST FFNNs: Mnist-Small (two hidden
layers, the cheap stage, biased toward CPU/iGPU) escalating into
Mnist-Deep (six hidden layers, the heavy stage, biased toward the dGPU).
Both take flat 784-vectors, so an escalated sample is literally the same
input re-run through the bigger network.

Thresholds are calibrated *from the models themselves*: the controller's
``[min, max]`` band is placed at quantiles of the cheap stage's measured
confidence distribution on a probe set, so the exit fraction sweeps a
useful range whether the weights are trained or fresh — an untrained
model's confidences cluster differently, but its quantiles still slice
traffic the same way.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SchedulerError
from repro.cascade.confidence import CascadeProfile, profile_cascade
from repro.cascade.controller import ControllerConfig
from repro.cascade.spec import CascadeSpec, CascadeStage, ExitRule
from repro.nn.builders import build_model
from repro.nn.datasets import make_mnist
from repro.nn.model import Sequential
from repro.nn.train import TrainConfig, train_model
from repro.nn.zoo import MNIST_DEEP, MNIST_SMALL
from repro.rng import ensure_rng

__all__ = [
    "DEFAULT_ENTRY_BIAS",
    "DEFAULT_FINAL_BIAS",
    "default_cascade",
    "probe_for",
    "build_stage_models",
    "default_profile",
    "calibrated_controller_config",
]

#: The cheap stage rides the low-power devices; the heavy stage earns the
#: dGPU (stage placement, tentpole item 4).
DEFAULT_ENTRY_BIAS = ("cpu", "igpu")
DEFAULT_FINAL_BIAS = ("dgpu",)


def default_cascade(
    kind: str = "top1", threshold: float = 0.7, name: str = "mnist-cascade"
) -> CascadeSpec:
    """Mnist-Small -> Mnist-Deep, the default early-exit chain."""
    return CascadeSpec(
        name=name,
        stages=(
            CascadeStage(
                spec=MNIST_SMALL,
                exit_rule=ExitRule(kind=kind, threshold=threshold),
                device_bias=DEFAULT_ENTRY_BIAS,
            ),
            CascadeStage(spec=MNIST_DEEP, device_bias=DEFAULT_FINAL_BIAS),
        ),
    )


def probe_for(
    input_shape: "tuple[int, ...]",
    n: int = 256,
    rng: "int | np.random.Generator | None" = 0,
) -> np.ndarray:
    """A held-out probe batch matching one input shape.

    Flat 784-vectors get flattened synthetic MNIST images (structured
    inputs, so confidence distributions look like real traffic); any
    other shape gets a standard-normal batch.
    """
    if n <= 0:
        raise SchedulerError(f"probe size must be positive, got {n}")
    gen = ensure_rng(rng)
    if tuple(input_shape) == (784,):
        data = make_mnist(n_samples=n + 8, test_frac=0.5, rng=gen)
        x = data.x_test.reshape(data.x_test.shape[0], -1)[:n]
        if x.shape[0] < n:  # tiny probe: top up from the train half
            extra = data.x_train.reshape(data.x_train.shape[0], -1)
            x = np.concatenate([x, extra[: n - x.shape[0]]])
        return np.ascontiguousarray(x, dtype=np.float32)
    return gen.standard_normal((n, *input_shape)).astype(np.float32)


def build_stage_models(
    cascade: CascadeSpec,
    rng: "int | np.random.Generator | None" = 0,
    train_samples: int = 0,
    train_epochs: int = 2,
) -> "dict[str, Sequential]":
    """Build (and optionally lightly train) every stage's network.

    ``train_samples > 0`` trains each stage on that many synthetic MNIST
    samples — enough to spread the confidence distributions apart for
    demos; 0 (the default) keeps fresh weights, which the quantile
    calibration handles fine.
    """
    gen = ensure_rng(rng)
    models: "dict[str, Sequential]" = {}
    train_data = None
    if train_samples > 0:
        train_data = make_mnist(n_samples=train_samples, test_frac=0.1, rng=gen)
    for stage in cascade.stages:
        model = build_model(stage.spec, rng=gen)
        if train_data is not None and tuple(stage.spec.input_shape) == (784,):
            x = train_data.x_train.reshape(train_data.x_train.shape[0], -1)
            train_model(
                model, x, train_data.y_train,
                config=TrainConfig(epochs=train_epochs, batch_size=64),
                rng=gen,
            )
        models[stage.spec.name] = model
    return models


def default_profile(
    cascade: "CascadeSpec | None" = None,
    models: "dict[str, Sequential] | None" = None,
    n_probe: int = 256,
    rng: "int | np.random.Generator | None" = 0,
) -> "tuple[CascadeSpec, dict[str, Sequential], CascadeProfile]":
    """One-call setup: cascade + built models + measured profile."""
    spec = cascade if cascade is not None else default_cascade()
    built = models if models is not None else build_stage_models(spec, rng=rng)
    probe = probe_for(spec.entry.spec.input_shape, n=n_probe, rng=rng)
    return spec, built, profile_cascade(spec, built, probe)


def calibrated_controller_config(
    profile: CascadeProfile,
    kind: str = "top1",
    stage: int = 0,
    low_q: float = 0.15,
    initial_q: float = 0.5,
    high_q: float = 0.9,
    **overrides,
) -> ControllerConfig:
    """Place the controller's threshold band at measured quantiles.

    ``min_threshold`` at ``low_q`` keeps at least ~``1 - low_q`` of
    traffic exiting when fully open; ``max_threshold`` at ``high_q``
    caps escalation near ``high_q`` of traffic when fully closed.  The
    step defaults to an eighth of the band, so roughly eight overloaded
    ticks sweep fully open whatever the model's confidence scale.  Extra
    keyword arguments pass through to :class:`ControllerConfig` (step,
    watermarks, headroom, comfort).
    """
    if not 0.0 <= low_q < initial_q < high_q <= 1.0:
        raise SchedulerError(
            f"need 0 <= low_q < initial_q < high_q <= 1, got "
            f"{low_q}, {initial_q}, {high_q}"
        )
    sp = profile.stage(stage)
    lo = sp.quantile(kind, low_q)
    init = sp.quantile(kind, initial_q)
    hi = sp.quantile(kind, high_q)
    # Degenerate (near-constant) confidence distributions can collapse
    # the band; spread it minimally so the controller still has room.
    if not lo < init < hi:
        eps = 1e-4
        init = min(max(init, lo + eps), 1.0 - eps)
        hi = min(max(hi, init + eps), 1.0)
        lo = max(min(lo, init - eps), eps)
    overrides.setdefault("step", (hi - lo) / 8.0)
    return ControllerConfig(
        initial=init, min_threshold=lo, max_threshold=hi, **overrides
    )
