"""Cascade specifications: ordered model chains with per-stage exit rules.

A cascade serves a cheap model first and escalates only the samples it is
not confident about (MultiTASC++, arXiv:2412.04147).  A
:class:`CascadeSpec` is the static description: which zoo models form the
chain, what confidence signal each stage thresholds on to exit, and which
device classes each stage prefers — the cheap stage rides the CPU/iGPU,
the heavy stage earns the dGPU.  The dynamic half (adaptive thresholds,
escalation plumbing) lives in :mod:`repro.cascade.controller` and
:mod:`repro.cascade.executor`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchedulerError
from repro.nn.builders import ModelSpec

__all__ = ["EXIT_KINDS", "ExitRule", "CascadeStage", "CascadeSpec"]

#: Confidence signals an exit rule may threshold on: the top-1 softmax
#: probability, or the margin between the top two probabilities.
EXIT_KINDS = ("top1", "margin")

#: Device classes a stage bias may name.
_DEVICE_CLASSES = ("cpu", "igpu", "dgpu")


@dataclass(frozen=True)
class ExitRule:
    """One stage's exit test: confidence ``kind`` at or above ``threshold``.

    Samples whose confidence clears the threshold take this stage's answer
    and leave the cascade; the rest escalate to the next stage.  The
    threshold given here is the *static* value; an adaptive controller may
    override the stage-0 threshold at run time.
    """

    kind: str = "top1"
    threshold: float = 0.7

    def __post_init__(self) -> None:
        if self.kind not in EXIT_KINDS:
            raise SchedulerError(
                f"unknown exit-rule kind {self.kind!r}; known: {EXIT_KINDS}"
            )
        if not 0.0 < self.threshold <= 1.0:
            raise SchedulerError(
                f"exit threshold must be in (0, 1], got {self.threshold}"
            )


@dataclass(frozen=True)
class CascadeStage:
    """One link in the chain: a deployed model plus its exit behaviour.

    ``exit_rule`` is None only for the final stage (everything that
    reaches it is answered there).  ``device_bias`` nudges the backlog
    scheduler's ranking for this stage's model — see
    :meth:`repro.sched.backlog.BacklogAwareScheduler.set_model_preference`.
    """

    spec: ModelSpec
    exit_rule: "ExitRule | None" = None
    device_bias: "tuple[str, ...] | None" = None

    def __post_init__(self) -> None:
        if self.device_bias is not None:
            bad = [c for c in self.device_bias if c not in _DEVICE_CLASSES]
            if bad:
                raise SchedulerError(
                    f"unknown device classes in stage bias {bad}; "
                    f"known: {_DEVICE_CLASSES}"
                )


@dataclass(frozen=True)
class CascadeSpec:
    """An ordered chain of at least two stages over distinct models.

    Every stage but the last needs an exit rule (otherwise nothing would
    ever leave early); the last must not have one (it answers whatever
    reaches it).  All stages must agree on input shape — a sample that
    escalates is the *same* sample, re-run through a bigger network.
    """

    name: str
    stages: "tuple[CascadeStage, ...]"

    def __post_init__(self) -> None:
        if not self.name:
            raise SchedulerError("cascade name must be non-empty")
        if len(self.stages) < 2:
            raise SchedulerError(
                f"a cascade needs at least 2 stages, got {len(self.stages)}"
            )
        names = [s.spec.name for s in self.stages]
        if len(set(names)) != len(names):
            raise SchedulerError(f"cascade stages must use distinct models: {names}")
        for i, stage in enumerate(self.stages[:-1]):
            if stage.exit_rule is None:
                raise SchedulerError(
                    f"stage {i} ({stage.spec.name!r}) needs an exit rule "
                    "(only the final stage answers unconditionally)"
                )
        if self.stages[-1].exit_rule is not None:
            raise SchedulerError(
                f"final stage ({self.stages[-1].spec.name!r}) must not have an "
                "exit rule — everything that reaches it is answered there"
            )
        shapes = {s.spec.input_shape for s in self.stages}
        if len(shapes) != 1:
            raise SchedulerError(
                f"cascade stages must share one input shape, got {sorted(shapes)}"
            )

    # -- views -------------------------------------------------------------

    @property
    def n_stages(self) -> int:
        return len(self.stages)

    @property
    def model_names(self) -> "tuple[str, ...]":
        """Stage model names, in chain order."""
        return tuple(s.spec.name for s in self.stages)

    @property
    def entry(self) -> CascadeStage:
        """The cheap stage every request starts at."""
        return self.stages[0]

    @property
    def final(self) -> CascadeStage:
        """The heavy stage that answers unconditionally."""
        return self.stages[-1]

    def stage(self, index: int) -> CascadeStage:
        if not 0 <= index < len(self.stages):
            raise SchedulerError(
                f"no stage {index} in cascade {self.name!r} "
                f"({len(self.stages)} stages)"
            )
        return self.stages[index]
