"""Cascade chains: the per-request handle spanning every escalation hop.

A :class:`CascadeChain` is the cascade-level analogue of a serving
response: one submitted batch, however many stages its samples end up
visiting.  It resolves exactly once — when every sample has an answer
(possibly a forced or fallback one) or when stage 0 shed the whole batch.
:class:`CascadeResult` aggregates chains the way ``ServingResult`` /
``ClusterResult`` aggregate responses, adding the goodput measure the
cascade bench compares against single-model serving.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SchedulerError
from repro.cascade.telemetry import CascadeTelemetry

__all__ = ["CascadeChain", "CascadeResult"]

#: Completions landing within this of the deadline still meet it.
_DEADLINE_EPS = 1e-9


class CascadeChain:
    """Future-like handle for one batch served through a cascade.

    * ``origin_arrival_s`` / ``deadline_s`` — the chain's first arrival
      and its absolute SLO; every escalation inherits both.
    * ``exits`` — samples answered at each stage *of this chain*.
    * ``answer_stage`` — the deepest stage that answered any samples.
    * ``forced`` — deadline pressure made a remnant take an early answer.
    * ``fallback`` — an escalation was shed; the previous stage's answer
      stood for the remnant.
    """

    __slots__ = (
        "chain_id", "batch", "origin_arrival_s", "deadline_s", "policy",
        "status", "shed_reason", "end_s", "answer_stage", "exits",
        "forced", "fallback", "x", "last_end_s", "n_stages_run",
    )

    def __init__(
        self,
        chain_id: int,
        batch: int,
        origin_arrival_s: float,
        deadline_s: "float | None",
        policy: str = "throughput",
        x: "np.ndarray | None" = None,
    ):
        if batch <= 0:
            raise SchedulerError(f"chain batch must be positive, got {batch}")
        self.chain_id = chain_id
        self.batch = batch
        self.origin_arrival_s = float(origin_arrival_s)
        self.deadline_s = deadline_s
        self.policy = policy
        self.status = "pending"
        self.shed_reason: "str | None" = None
        self.end_s: "float | None" = None
        self.answer_stage: "int | None" = None
        self.exits: "dict[int, int]" = {}
        self.forced = False
        self.fallback = False
        self.x = x                    # current remnant's host samples
        self.last_end_s: "float | None" = None  # latest completed stage end
        self.n_stages_run = 0

    # -- state -------------------------------------------------------------

    @property
    def done(self) -> bool:
        return self.status != "pending"

    @property
    def served(self) -> bool:
        return self.status == "ok"

    @property
    def latency_s(self) -> float:
        """First arrival to last answer, across every stage (served only)."""
        if not self.served:
            raise SchedulerError(f"chain is {self.status}, has no latency")
        return self.end_s - self.origin_arrival_s

    @property
    def deadline_met(self) -> "bool | None":
        """Whether the chain's SLO held (None if best-effort or unserved)."""
        if not self.served or self.deadline_s is None:
            return None
        return self.end_s <= self.deadline_s + _DEADLINE_EPS

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CascadeChain(id={self.chain_id}, batch={self.batch}, "
            f"status={self.status!r}, answer_stage={self.answer_stage})"
        )


@dataclass
class CascadeResult:
    """Aggregate outcome of serving a trace through a cascade executor."""

    chains: "list[CascadeChain]" = field(default_factory=list)
    telemetry: CascadeTelemetry = field(default_factory=CascadeTelemetry)

    def __len__(self) -> int:
        return len(self.chains)

    @property
    def served(self) -> "list[CascadeChain]":
        return [c for c in self.chains if c.served]

    @property
    def shed(self) -> "list[CascadeChain]":
        return [c for c in self.chains if c.status == "shed"]

    @property
    def shed_rate(self) -> float:
        return len(self.shed) / len(self.chains) if self.chains else 0.0

    @property
    def n_violations(self) -> int:
        """Served chains whose last answer landed past the deadline."""
        return sum(1 for c in self.served if c.deadline_met is False)

    def goodput(self) -> float:
        """Fraction of resolved chains answered within their SLO.

        Sheds and late answers weigh against it equally — the same
        definition the cluster router uses, so cascade and single-model
        serving compare on one axis.  1.0 before anything resolves.
        """
        resolved = [c for c in self.chains if c.done]
        if not resolved:
            return 1.0
        good = sum(
            1 for c in resolved if c.served and c.deadline_met is not False
        )
        return good / len(resolved)

    def latency_percentile(self, q: float) -> float:
        """q-th percentile end-to-end latency over served chains, seconds."""
        served = self.served
        if not served:
            raise SchedulerError("no served chains in result")
        return float(np.percentile([c.latency_s for c in served], q))

    def exit_counts(self) -> "dict[int, int]":
        """Samples answered at each stage, over every chain."""
        out: "dict[int, int]" = {}
        for chain in self.chains:
            for stage, n in chain.exits.items():
                out[stage] = out.get(stage, 0) + n
        return dict(sorted(out.items()))
