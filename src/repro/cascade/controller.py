"""Adaptive exit-threshold controller (MultiTASC++ style).

Each control tick reads three per-node load signals — queue depth, recent
p99 versus the SLO, and how many requests the node shed since the last
tick — and nudges that node's stage-0 exit threshold one step:

* **overloaded** (sheds happened, the queue is past the high watermark,
  or the recent tail eats more than ``headroom`` of the SLO budget) →
  *lower* the threshold.  A lower bar means more samples take the cheap
  stage's answer and never reach the heavy model: accuracy degrades
  smoothly *before* admission control starts shedding — the pre-shed
  lever.
* **calm** (no sheds, queue under the low watermark, recent tail under
  ``comfort`` of the SLO) → *raise* the threshold, buying accuracy back.

Thresholds are clamped to a calibrated ``[min, max]`` band (see
:func:`repro.cascade.presets.calibrated_controller_config`) so the
controller can never pin the cascade fully open or fully closed.  Every
move is recorded in :attr:`history` — benches assert the controller
demonstrably moved as backlog shifted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchedulerError

__all__ = ["ControllerConfig", "ThresholdController"]


@dataclass(frozen=True)
class ControllerConfig:
    """Tuning knobs for the adaptive threshold controller.

    Parameters
    ----------
    initial:
        Starting exit threshold for every node.
    min_threshold / max_threshold:
        Clamp band for the adapted threshold.
    step:
        Per-tick adjustment magnitude.
    high_watermark / low_watermark:
        Queue-depth bounds (requests) triggering lower / allowing raise.
    headroom:
        Fraction of the SLO the recent p99 may use before the node counts
        as overloaded.
    comfort:
        Fraction of the SLO the recent p99 must stay under before the
        controller raises the threshold again.
    """

    initial: float = 0.7
    min_threshold: float = 0.3
    max_threshold: float = 0.95
    step: float = 0.02
    high_watermark: int = 32
    low_watermark: int = 4
    headroom: float = 0.8
    comfort: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.min_threshold <= self.initial <= self.max_threshold <= 1.0:
            raise SchedulerError(
                "need 0 < min <= initial <= max <= 1, got "
                f"min={self.min_threshold}, initial={self.initial}, "
                f"max={self.max_threshold}"
            )
        if self.step <= 0.0:
            raise SchedulerError(f"step must be positive, got {self.step}")
        if self.low_watermark < 0 or self.high_watermark <= self.low_watermark:
            raise SchedulerError(
                "need 0 <= low_watermark < high_watermark, got "
                f"low={self.low_watermark}, high={self.high_watermark}"
            )
        if not 0.0 < self.comfort <= self.headroom <= 1.0:
            raise SchedulerError(
                "need 0 < comfort <= headroom <= 1, got "
                f"comfort={self.comfort}, headroom={self.headroom}"
            )


class ThresholdController:
    """Per-node adaptive exit thresholds, stepped once per control tick."""

    def __init__(self, config: "ControllerConfig | None" = None):
        self.config = config if config is not None else ControllerConfig()
        self._theta: "dict[str, float]" = {}
        #: Every applied change, as ``(t_s, node_key, new_threshold)``.
        self.history: "list[tuple[float, str, float]]" = []
        self.n_lowered = 0
        self.n_raised = 0
        self.n_ticks = 0

    def threshold(self, key: str) -> float:
        """The current exit threshold for one node (initial until moved)."""
        return self._theta.get(key, self.config.initial)

    @property
    def thresholds(self) -> "dict[str, float]":
        """Every node's current threshold (only nodes that ever moved)."""
        return dict(self._theta)

    def tick(
        self,
        key: str,
        now: float,
        depth: int,
        recent_p99_s: "float | None",
        slo_s: "float | None",
        shed_delta: int,
    ) -> "tuple[float, bool]":
        """One control step for one node; returns ``(threshold, changed)``.

        ``depth`` is the node's queued request count, ``recent_p99_s`` its
        rolling-window tail (None before any completion), ``shed_delta``
        how many requests it shed since the previous tick.
        """
        cfg = self.config
        self.n_ticks += 1
        theta = self.threshold(key)
        tail_hot = (
            recent_p99_s is not None
            and slo_s is not None
            and recent_p99_s > cfg.headroom * slo_s
        )
        tail_cool = (
            recent_p99_s is None
            or slo_s is None
            or recent_p99_s < cfg.comfort * slo_s
        )
        if shed_delta > 0 or depth >= cfg.high_watermark or tail_hot:
            new = max(cfg.min_threshold, theta - cfg.step)
            if new != theta:
                self.n_lowered += 1
        elif shed_delta == 0 and depth <= cfg.low_watermark and tail_cool:
            new = min(cfg.max_threshold, theta + cfg.step)
            if new != theta:
                self.n_raised += 1
        else:
            new = theta
        changed = new != theta
        if changed:
            self._theta[key] = new
            self.history.append((float(now), key, new))
        return new, changed

    def snapshot(self) -> dict:
        """Plain-dict summary for telemetry rollups."""
        return {
            "initial": self.config.initial,
            "band": (self.config.min_threshold, self.config.max_threshold),
            "thresholds": dict(sorted(self._theta.items())),
            "ticks": self.n_ticks,
            "lowered": self.n_lowered,
            "raised": self.n_raised,
            "moves": len(self.history),
        }
