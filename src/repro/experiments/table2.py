"""Table II — predictor family comparison (§VI).

For each candidate scheduler model the paper reports accuracy, training
time and per-decision classification time; the baseline is uniform random
device selection.  We reproduce the comparison on the regenerated
scheduler dataset: accuracy from stratified 5-fold cross-validation,
training time as the wall-clock of one full fit, classification time as
the mean wall-clock per single decision.

Wall-clock here is real (``perf_counter``) — the only place the repo uses
it, as these rows measure *our* predictor implementations, not the
simulated testbed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.experiments.registry import register
from repro.experiments.report import fmt_pct, render_table
from repro.ml import (
    DecisionTreeClassifier,
    KNeighborsClassifier,
    LinearRegressionClassifier,
    LinearSVC,
    MLPClassifier,
    RandomForestClassifier,
    StratifiedKFold,
    cross_val_score,
)
from repro.ml.base import BaseEstimator, clone
from repro.rng import ensure_rng
from repro.sched.dataset import SchedulerDataset, generate_dataset

__all__ = ["PredictorRow", "Table2Result", "run_table2", "candidate_estimators"]


def candidate_estimators(seed: int = 7) -> dict[str, BaseEstimator]:
    """The six trained predictor families of Table II."""
    return {
        "Linear Regression": LinearRegressionClassifier(),
        "SVM": LinearSVC(c=1.0, max_iter=3000, lr=0.05),
        "k-NN": KNeighborsClassifier(n_neighbors=5),
        "Feed Forward Neural Network": MLPClassifier(
            hidden_layers=(32, 32), epochs=60, lr=0.01, random_state=seed
        ),
        "Random Forest": RandomForestClassifier(
            n_estimators=50, criterion="entropy", max_depth=10, random_state=seed
        ),
        "Decision Tree": DecisionTreeClassifier(criterion="entropy", max_depth=10),
    }


@dataclass(frozen=True)
class PredictorRow:
    """One Table II row."""

    name: str
    accuracy: float
    train_time_s: float | None       # None for the no-training baseline
    classify_time_ms: float


@dataclass
class Table2Result:
    """All rows, renderable in the paper's layout."""

    rows: list[PredictorRow] = field(default_factory=list)

    def row(self, name: str) -> PredictorRow:
        """Fetch a row by predictor name; unknown names raise."""
        for r in self.rows:
            if r.name == name:
                return r
        raise KeyError(f"no Table II row named {name!r}")

    def render(self) -> str:
        body = [
            (
                r.name,
                fmt_pct(r.accuracy),
                "N/A" if r.train_time_s is None else f"{r.train_time_s:.2f} s",
                f"{r.classify_time_ms:.3f} ms",
            )
            for r in self.rows
        ]
        return render_table(
            ("Model", "Accuracy", "Training Time", "Classification Time"),
            body,
            title="Table II: scheduler performance per predictor family",
        )


def _baseline_accuracy(dataset: SchedulerDataset, seed: int) -> float:
    """Uniform random device selection (the paper's 41% baseline)."""
    from repro.ml.dummy import DummyClassifier

    baseline = DummyClassifier("uniform", random_state=seed)
    baseline.fit(dataset.x, dataset.y)
    return baseline.score(dataset.x, dataset.y)


def _classification_time_ms(est: BaseEstimator, x: np.ndarray, repeats: int = 200) -> float:
    """Mean wall-clock per single-row predict call."""
    rng = ensure_rng(123)
    idx = rng.integers(0, x.shape[0], size=repeats)
    start = time.perf_counter()
    for i in idx:
        est.predict(x[i : i + 1])
    return (time.perf_counter() - start) / repeats * 1e3


def run_table2(
    dataset: SchedulerDataset | None = None,
    cv_splits: int = 5,
    seed: int = 7,
) -> Table2Result:
    """Regenerate Table II on the scheduler dataset.

    Defaults to the throughput-policy set (1470 labelled points, the
    paper's 1480-sample scale); the scheduler trains one classifier per
    policy (Fig. 5 loads "a corresponding policy"), so per-policy
    evaluation is the faithful protocol.
    """
    if dataset is None:
        dataset = generate_dataset("throughput")
    result = Table2Result()
    result.rows.append(
        PredictorRow(
            name="Baseline (Random Selection)",
            accuracy=_baseline_accuracy(dataset, seed),
            train_time_s=None,
            classify_time_ms=0.0,
        )
    )
    cv = StratifiedKFold(n_splits=cv_splits, random_state=seed)
    for name, est in candidate_estimators(seed).items():
        scores = cross_val_score(est, dataset.x, dataset.y, cv=cv)
        fitted = clone(est)
        start = time.perf_counter()
        fitted.fit(dataset.x, dataset.y)
        train_s = time.perf_counter() - start
        result.rows.append(
            PredictorRow(
                name=name,
                accuracy=float(scores.mean()),
                train_time_s=train_s,
                classify_time_ms=_classification_time_ms(fitted, dataset.x),
            )
        )
    return result


@register("table2", "Table II", "Accuracy / train / classify time per predictor")
def _run(**kwargs) -> Table2Result:
    return run_table2(**kwargs)
