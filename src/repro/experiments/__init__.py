"""Per-table / per-figure reproduction harnesses.

Each module regenerates one artifact of the paper's evaluation:

* :mod:`repro.experiments.fig3` — throughput / latency / power sweeps,
* :mod:`repro.experiments.fig4` — energy (joules) sweeps,
* :mod:`repro.experiments.table1` — the RF hyperparameter grid,
* :mod:`repro.experiments.table2` — the seven-predictor comparison,
* :mod:`repro.experiments.table3` — RF F1 / precision / recall,
* :mod:`repro.experiments.fig6` — unseen-model predictions + perf loss,
* :mod:`repro.experiments.headline` — the §I/§VIII headline numbers.

``python -m repro.cli <experiment>`` renders any of them;
:mod:`repro.experiments.registry` maps ids to runners.
"""

from repro.experiments.registry import get_experiment, list_experiments, register

__all__ = ["get_experiment", "list_experiments", "register"]
