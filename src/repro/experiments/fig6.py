"""Fig. 6 — scheduler predictions on *unseen* model architectures (§VI).

The predictors (throughput policy and energy policy) are trained only on
the 21 training architectures; the held-out :data:`~repro.nn.zoo.UNSEEN_SPECS`
are then swept across batch sizes.  Per point the harness records whether
the predicted device matched the hindsight oracle and what fraction of the
ideal metric the prediction achieved — the green/red bars of Fig. 6 and the
"<5% performance loss" claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.registry import register
from repro.experiments.report import fmt_pct, render_table
from repro.nn.builders import ModelSpec
from repro.nn.zoo import UNSEEN_SPECS, list_model_specs
from repro.sched.dataset import device_class_index, generate_dataset
from repro.sched.features import encode_point
from repro.sched.policies import Policy
from repro.sched.predictor import DevicePredictor
from repro.telemetry.session import MeasurementSession

__all__ = ["Fig6Point", "Fig6Result", "run_fig6", "FIG6_BATCHES"]

#: Batch axis of Fig. 6 (8 .. 128K, the range its bars cover).
FIG6_BATCHES: tuple[int, ...] = tuple(2**k for k in range(3, 18))


@dataclass(frozen=True)
class Fig6Point:
    """One bar of Fig. 6: a prediction for one unseen sweep cell."""

    policy: str
    model: str
    batch: int
    gpu_state: str
    predicted: str
    oracle: str
    achieved: float     # metric value of the predicted device
    ideal: float        # metric value of the oracle device

    @property
    def correct(self) -> bool:
        """Whether the prediction matched the oracle device."""
        return self.predicted == self.oracle

    @property
    def relative_loss(self) -> float:
        """Fraction of the ideal metric lost by the prediction (0 if right).

        For maximize-metrics (throughput): 1 - achieved/ideal.
        For minimize-metrics (energy): 1 - ideal/achieved.
        """
        if self.correct or self.ideal == self.achieved:
            return 0.0
        if Policy.parse(self.policy).maximize:
            return max(0.0, 1.0 - self.achieved / self.ideal)
        return max(0.0, 1.0 - self.ideal / self.achieved)


@dataclass
class Fig6Result:
    """All Fig. 6 points with the paper's summary statistics."""

    points: list[Fig6Point] = field(default_factory=list)

    def for_policy(self, policy: "str | Policy") -> list[Fig6Point]:
        """All points belonging to one policy."""
        value = Policy.parse(policy).value
        return [p for p in self.points if p.policy == value]

    def accuracy(self, policy: "str | Policy | None" = None) -> float:
        """Fraction of oracle-matching predictions (optionally per policy)."""
        pts = self.points if policy is None else self.for_policy(policy)
        if not pts:
            raise ValueError("no Fig. 6 points for that policy")
        return float(np.mean([p.correct for p in pts]))

    @property
    def combined_accuracy(self) -> float:
        """The paper's 91% headline: both policies pooled."""
        return self.accuracy(None)

    def mean_loss(self, policy: "str | Policy | None" = None) -> float:
        """Average relative loss over all points (correct ones count 0)."""
        pts = self.points if policy is None else self.for_policy(policy)
        return float(np.mean([p.relative_loss for p in pts]))

    def worst_loss(self, policy: "str | Policy | None" = None) -> float:
        """Largest single-point relative loss."""
        pts = self.points if policy is None else self.for_policy(policy)
        return float(max(p.relative_loss for p in pts))

    def render(self) -> str:
        rows = []
        for pol in ("throughput", "energy"):
            pts = self.for_policy(pol)
            rows.append(
                (
                    pol,
                    fmt_pct(self.accuracy(pol)),
                    fmt_pct(self.mean_loss(pol)),
                    fmt_pct(self.worst_loss(pol)),
                    len(pts),
                )
            )
        table = render_table(
            ("Policy", "Accuracy", "Mean loss", "Worst loss", "Points"),
            rows,
            title="Fig. 6: unseen-architecture predictions",
        )
        summary = (
            f"combined accuracy: {fmt_pct(self.combined_accuracy)}  "
            f"mean performance loss: {fmt_pct(self.mean_loss())}"
        )
        bars = []
        for p in sorted(self.points, key=lambda p: (p.policy, p.model, p.gpu_state, p.batch)):
            mark = "#" if p.correct else "x"
            bars.append(
                f"  [{mark}] {p.policy:10s} {p.model:18s} {p.gpu_state:4s} "
                f"batch={p.batch:<7d} pred={p.predicted:4s} ideal={p.oracle:4s} "
                f"loss={fmt_pct(p.relative_loss)}"
            )
        return table + "\n" + summary + "\n" + "\n".join(bars)


def run_fig6(
    policies: tuple[str, ...] = ("throughput", "energy"),
    unseen: "tuple[ModelSpec, ...]" = UNSEEN_SPECS,
    batches: "tuple[int, ...]" = FIG6_BATCHES,
    gpu_states: tuple[str, ...] = ("warm", "idle"),
    seed: int = 7,
    session: MeasurementSession | None = None,
) -> Fig6Result:
    """Train on the 21 training architectures, evaluate on the held-out set."""
    sess = session if session is not None else MeasurementSession()
    training_specs = list(list_model_specs("training"))
    unseen_names = {s.name for s in unseen}
    overlap = unseen_names & {s.name for s in training_specs}
    if overlap:
        raise ValueError(f"unseen specs leak into training: {sorted(overlap)}")

    result = Fig6Result()
    for policy_name in policies:
        policy = Policy.parse(policy_name)
        dataset = generate_dataset(policy, specs=training_specs, session=sess)
        predictor = DevicePredictor(policy).fit(dataset)
        for spec in unseen:
            for state in gpu_states:
                feats = np.vstack(
                    [encode_point(spec, b, state) for b in batches]
                )
                preds = predictor.predict_batch(feats)
                for batch, pred_idx in zip(batches, preds):
                    metrics = {
                        name: _metric_value(m, policy)
                        for name, m in sess.measure_all_devices(
                            spec, batch, state
                        ).items()
                    }
                    pick = max if policy.maximize else min
                    oracle_name = pick(metrics, key=metrics.get)
                    pred_class = ("cpu", "dgpu", "igpu")[int(pred_idx)]
                    pred_name = sess.device(pred_class).name
                    result.points.append(
                        Fig6Point(
                            policy=policy.value,
                            model=spec.name,
                            batch=batch,
                            gpu_state=state,
                            predicted=_class_of(oracle_name=pred_name),
                            oracle=_class_of(oracle_name=oracle_name),
                            achieved=metrics[pred_name],
                            ideal=metrics[oracle_name],
                        )
                    )
    return result


def _metric_value(measurement, policy: Policy) -> float:
    if policy is Policy.THROUGHPUT:
        return measurement.throughput_gbit_s
    if policy is Policy.LATENCY:
        return measurement.latency_ms
    return measurement.joules


def _class_of(oracle_name: str) -> str:
    return ("cpu", "dgpu", "igpu")[device_class_index(oracle_name)]


@register("fig6", "Fig. 6", "Unseen-model device predictions + perf loss")
def _run(**kwargs) -> Fig6Result:
    return run_fig6(**kwargs)
