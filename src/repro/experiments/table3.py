"""Table III — random-forest F1 / precision / recall via nested CV (§V-C).

The paper: stratified k-fold **nested** cross-validation (inner loop picks
Table I hyperparameters, outer loop scores), reporting weighted F1,
precision and recall pooled over the outer test folds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.registry import register
from repro.experiments.report import fmt_pct, render_table
from repro.experiments.table1 import FULL_GRID, REDUCED_GRID
from repro.ml import RandomForestClassifier
from repro.ml.metrics import classification_report, precision_recall_f1
from repro.ml.model_selection import StratifiedKFold, nested_cross_validation
from repro.sched.dataset import DEVICE_CLASSES, SchedulerDataset, generate_dataset

__all__ = ["Table3Result", "run_table3"]


@dataclass
class Table3Result:
    """Weighted P/R/F1 of the nested-CV random forest."""

    f1: float
    precision: float
    recall: float
    fold_params: list[dict]
    per_class_report: str = ""

    def render(self) -> str:
        table = render_table(
            ("F1-score", "Precision", "Recall"),
            [(fmt_pct(self.f1), fmt_pct(self.precision), fmt_pct(self.recall))],
            title="Table III: Random Forest scheduler efficiency",
        )
        picks = "; ".join(str(p) for p in self.fold_params)
        out = f"{table}\nper-fold best params: {picks}"
        if self.per_class_report:
            out += f"\n\nper-device-class breakdown:\n{self.per_class_report}"
        return out


def run_table3(
    dataset: SchedulerDataset | None = None,
    outer_splits: int = 5,
    inner_splits: int = 3,
    full_grid: bool = False,
    seed: int = 7,
) -> Table3Result:
    """Stratified nested CV of the random forest on the scheduler dataset.

    ``full_grid=True`` searches the complete Table I space (1344 points,
    minutes of runtime); the default reduced grid covers the same axes.
    """
    if dataset is None:
        dataset = generate_dataset("throughput")
    grid = FULL_GRID if full_grid else REDUCED_GRID
    result = nested_cross_validation(
        RandomForestClassifier(random_state=seed),
        dataset.x,
        dataset.y,
        param_grid=grid,
        outer_cv=StratifiedKFold(n_splits=outer_splits, random_state=seed),
        inner_cv=StratifiedKFold(n_splits=inner_splits, random_state=seed + 1),
        scoring="f1",
    )
    precision, recall, f1 = precision_recall_f1(result.y_true, result.y_pred)
    return Table3Result(
        f1=f1,
        precision=precision,
        recall=recall,
        fold_params=result.fold_params,
        per_class_report=classification_report(
            result.y_true, result.y_pred, list(DEVICE_CLASSES)
        ),
    )


@register("table3", "Table III", "RF F1/precision/recall via stratified nested CV")
def _run(**kwargs) -> Table3Result:
    return run_table3(**kwargs)
