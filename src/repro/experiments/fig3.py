"""Fig. 3 — throughput, latency and power vs batch size (§IV-C).

Five models x four device-states (CPU, iGPU, warm dGPU, idle dGPU) x batch
sizes 1..256K.  The paper plots throughput + power on the left axes and
latency on the right; :func:`run_fig3` produces the full grid as a
:class:`~repro.telemetry.recorder.SweepRecorder`, and :class:`Fig3Result`
renders the same series row-wise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.registry import register
from repro.experiments.report import render_series
from repro.nn.builders import ModelSpec
from repro.nn.zoo import PAPER_MODELS
from repro.telemetry.recorder import SweepRecorder
from repro.telemetry.session import MeasurementSession

__all__ = ["FIG3_BATCHES", "DEVICE_STATES", "run_fig3", "Fig3Result"]

#: Batch sizes 2^0 .. 2^18 (1 .. 256K), the x-axis of Fig. 3.
FIG3_BATCHES: tuple[int, ...] = tuple(2**k for k in range(19))

#: The four curves per subplot: (device, dGPU start state).  CPU and iGPU
#: have no ramp, so one state suffices; the dGPU is measured both ways
#: (paper footnote 1).
DEVICE_STATES: tuple[tuple[str, str], ...] = (
    ("cpu", "warm"),
    ("igpu", "warm"),
    ("dgpu", "warm"),
    ("dgpu", "idle"),
)


def curve_label(device: str, gpu_state: str) -> str:
    """Legend label matching the paper's naming."""
    names = {"cpu": "i7 CPU", "igpu": "HD Graphics", "dgpu": "GTX 1080 Ti"}
    label = names[device]
    if device == "dgpu" and gpu_state == "idle":
        label = "idle " + label
    return label


def run_fig3(
    models: "tuple[ModelSpec, ...]" = PAPER_MODELS,
    batches: "tuple[int, ...]" = FIG3_BATCHES,
    session: MeasurementSession | None = None,
) -> "Fig3Result":
    """Execute the full characterization sweep."""
    sess = session if session is not None else MeasurementSession()
    recorder = SweepRecorder()
    for spec in models:
        for device, gpu_state in DEVICE_STATES:
            dev_name = sess.device(device).name
            for batch in batches:
                recorder.add(sess.measure(spec, dev_name, batch, gpu_state))
    return Fig3Result(recorder=recorder, models=tuple(m.name for m in models))


@dataclass
class Fig3Result:
    """The Fig. 3 grid plus rendering."""

    recorder: SweepRecorder
    models: tuple[str, ...]

    def series(self, model: str, device: str, gpu_state: str, metric: str):
        """(batch, value) series for one curve of the grid."""
        from repro.telemetry.session import MeasurementSession

        dev_name = MeasurementSession().device(device).name
        return self.recorder.series(model, dev_name, gpu_state, metric)

    def render(self, metrics: tuple[str, ...] = ("throughput", "power", "latency")) -> str:
        units = {"throughput": "bit/s", "power": "W", "latency": "s"}
        scale = {"throughput": 1e9, "power": 1.0, "latency": 1e-3}
        out = []
        for model in self.models:
            out.append(f"== Fig. 3: {model} ==")
            for metric in metrics:
                out.append(f"-- {metric} --")
                for device, state in DEVICE_STATES:
                    pts = [
                        (b, v * scale[metric])
                        for b, v in self.series(model, device, state, metric)
                    ]
                    out.append(render_series(curve_label(device, state), pts, units[metric]))
            out.append("")
        return "\n".join(out)


@register("fig3", "Fig. 3", "Throughput, latency and power per device/model/batch")
def _run(**kwargs) -> Fig3Result:
    return run_fig3(**kwargs)
