"""Experiment registry: id -> (runner, metadata)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ExperimentError

__all__ = ["Experiment", "register", "get_experiment", "list_experiments"]


@dataclass(frozen=True)
class Experiment:
    """A registered reproduction target."""

    exp_id: str
    paper_ref: str       # "Fig. 3", "Table II", ...
    description: str
    runner: Callable[..., object]   # returns an artifact with .render()


_REGISTRY: dict[str, Experiment] = {}


def register(exp_id: str, paper_ref: str, description: str):
    """Decorator registering a runner under an experiment id."""

    def deco(fn: Callable[..., object]) -> Callable[..., object]:
        if exp_id in _REGISTRY:
            raise ExperimentError(f"experiment {exp_id!r} registered twice")
        _REGISTRY[exp_id] = Experiment(exp_id, paper_ref, description, fn)
        return fn

    return deco


def _ensure_loaded() -> None:
    # Import side effects populate the registry lazily, avoiding cycles.
    from repro.experiments import (  # noqa: F401
        crossovers,
        fig3,
        fig4,
        fig6,
        headline,
        policies_matrix,
        sensitivity,
        table1,
        table2,
        table3,
    )


def get_experiment(exp_id: str) -> Experiment:
    """Look up a registered experiment by id; unknown ids raise."""
    _ensure_loaded()
    try:
        return _REGISTRY[exp_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ExperimentError(f"unknown experiment {exp_id!r}; known: {known}") from None


def list_experiments() -> list[Experiment]:
    """All registered experiments, sorted by id."""
    _ensure_loaded()
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]
