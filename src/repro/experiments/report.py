"""ASCII rendering helpers for experiment output.

The benches print the same rows/series the paper reports; these helpers
keep that output consistent (fixed-width tables, SI-prefixed values,
log-spaced series).
"""

from __future__ import annotations

from typing import Sequence

from repro.units import fmt_si

__all__ = ["render_table", "render_series", "fmt_pct", "fmt_value"]


def fmt_pct(fraction: float, precision: int = 2) -> str:
    """0.9322 -> '93.22%'."""
    return f"{100.0 * fraction:.{precision}f}%"


def fmt_value(value: float, unit: str = "") -> str:
    """SI-formatted value, '-' for None."""
    if value is None:
        return "-"
    return fmt_si(value, unit)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a fixed-width text table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]

    def line(row: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(row, widths))

    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
        out.append("=" * len(sep))
    out.append(line(cells[0]))
    out.append(sep)
    out.extend(line(r) for r in cells[1:])
    return "\n".join(out)


def render_series(
    name: str,
    points: Sequence[tuple[int, float]],
    unit: str = "",
) -> str:
    """Render one (batch, value) curve as a compact row list."""
    body = "  ".join(f"{b}:{fmt_si(v, unit, precision=3)}" for b, v in points)
    return f"{name}: {body}"
