"""Table I — the random-forest hyperparameter grid (§V-C).

The paper's exact search space, as data.  Nested cross-validation over the
full 1344-combination grid is what the paper's 26-second parallel training
does; our Table III runner defaults to a stratified sub-grid (same axes,
fewer points) to keep single-threaded regeneration quick, and accepts
``full_grid=True`` for the complete search.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.registry import register
from repro.experiments.report import render_table

__all__ = ["FULL_GRID", "REDUCED_GRID", "Table1Result", "run_table1"]

#: Table I, verbatim.
FULL_GRID: dict[str, list] = {
    "n_estimators": [5, 10, 15, 20, 25, 30, 35, 40, 45, 50, 100, 200],
    "max_depth": [3, 4, 5, 6, 7, 8, 9, 10],
    "criterion": ["entropy", "gini"],
    "min_samples_leaf": [1, 2, 3, 4, 5, 10, 15],
}

#: Same axes, boundary + midpoint values: used by default in nested CV.
REDUCED_GRID: dict[str, list] = {
    "n_estimators": [10, 50],
    "max_depth": [6, 10],
    "criterion": ["entropy", "gini"],
    "min_samples_leaf": [1, 5],
}


def grid_size(grid: dict[str, list]) -> int:
    """Number of hyperparameter combinations in a grid."""
    n = 1
    for values in grid.values():
        n *= len(values)
    return n


@dataclass
class Table1Result:
    """The hyperparameter table, renderable."""

    grid: dict[str, list]

    def render(self) -> str:
        rows = [
            (name, "{" + ", ".join(map(str, values)) + "}")
            for name, values in self.grid.items()
        ]
        table = render_table(
            ("Hyperparameter", "Values"),
            rows,
            title="Table I: Random Forest hyperparameter grid",
        )
        return f"{table}\n({grid_size(self.grid)} combinations)"


@register("table1", "Table I", "Random-forest hyperparameter search space")
def run_table1(full: bool = True) -> Table1Result:
    """Return Table I (the full grid, or the reduced test grid)."""
    return Table1Result(grid=FULL_GRID if full else REDUCED_GRID)
