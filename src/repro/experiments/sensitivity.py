"""Calibration-sensitivity analysis (no paper counterpart — simulation QA).

The testbed is analytical, so its calibration constants (sustained
efficiency, launch overheads, occupancy half-saturation, ...) carry the
conclusions.  This experiment perturbs each key constant by ×1/2 and ×2
and re-checks (a) the qualitative ordering facts behind the paper's
narrative and (b) the scheduler's accuracy — establishing that the
reproduction's claims are properties of the *structure* of the model, not
of one lucky constant.

Facts checked per variant:

* F1: CPU beats the warm dGPU on Simple at batch 8 (small-batch rule);
* F2: the dGPU beats the CPU on Mnist-Deep at batch 64K (large-batch rule);
* F3: an idle-start dGPU run is slower than a warm one (ramp penalty);
* F4: the iGPU has the lowest mean power draw (energy-efficiency rule).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.experiments.registry import register
from repro.experiments.report import fmt_pct, render_table
from repro.hw.specs import CPU_I7_8700, DGPU_GTX_1080TI, IGPU_UHD_630, DeviceSpec
from repro.ml.model_selection import StratifiedKFold, cross_val_score
from repro.nn.zoo import MNIST_DEEP, MNIST_SMALL, PAPER_MODELS, SIMPLE
from repro.ocl.device import Device, DeviceState
from repro.sched.dataset import generate_dataset
from repro.sched.predictor import default_estimator
from repro.telemetry.session import MeasurementSession

__all__ = ["Perturbation", "SensitivityRow", "SensitivityResult", "run_sensitivity"]

#: (label, base spec, field) — the constants that carry the calibration.
PERTURBED_FIELDS: tuple[tuple[str, DeviceSpec, str], ...] = (
    ("cpu.sustained_eff", CPU_I7_8700, "sustained_eff"),
    ("cpu.per_sample_overhead", CPU_I7_8700, "per_sample_overhead_s"),
    ("cpu.kernel_launch", CPU_I7_8700, "kernel_launch_s"),
    ("igpu.sustained_eff", IGPU_UHD_630, "sustained_eff"),
    ("igpu.halfsat", IGPU_UHD_630, "halfsat_workitems"),
    ("dgpu.sustained_eff", DGPU_GTX_1080TI, "sustained_eff"),
    ("dgpu.halfsat", DGPU_GTX_1080TI, "halfsat_workitems"),
    ("dgpu.kernel_launch", DGPU_GTX_1080TI, "kernel_launch_s"),
)

_EVAL_BATCHES = (1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144)


@dataclass(frozen=True)
class Perturbation:
    """One calibration variant: a spec field scaled by a factor."""

    label: str
    base: DeviceSpec
    field_name: str
    factor: float

    def apply(self) -> DeviceSpec:
        """Return the perturbed device spec (efficiency capped at 1)."""
        value = getattr(self.base, self.field_name) * self.factor
        if self.field_name == "sustained_eff":
            value = min(value, 1.0)
        return dataclasses.replace(self.base, **{self.field_name: value})


@dataclass(frozen=True)
class SensitivityRow:
    """Outcome of one variant."""

    label: str
    factor: float
    accuracy: float
    facts: tuple[bool, bool, bool, bool]

    @property
    def facts_hold(self) -> bool:
        """Whether all four ordering facts survived this variant."""
        return all(self.facts)


@dataclass
class SensitivityResult:
    """All perturbation rows plus the unperturbed baseline."""
    baseline_accuracy: float
    rows: list[SensitivityRow] = field(default_factory=list)

    @property
    def worst_accuracy(self) -> float:
        """Lowest scheduler accuracy over all variants."""
        return min(r.accuracy for r in self.rows)

    @property
    def n_fact_violations(self) -> int:
        """Variants that broke at least one ordering fact."""
        return sum(not r.facts_hold for r in self.rows)

    def render(self) -> str:
        body = [
            (
                r.label,
                f"x{r.factor:g}",
                fmt_pct(r.accuracy),
                "".join("Y" if f else "n" for f in r.facts),
            )
            for r in self.rows
        ]
        table = render_table(
            ("calibration constant", "scale", "RF accuracy", "facts F1-F4"),
            body,
            title="Calibration sensitivity (baseline accuracy "
            f"{fmt_pct(self.baseline_accuracy)})",
        )
        return (
            f"{table}\n"
            f"worst-case accuracy over variants: {fmt_pct(self.worst_accuracy)}; "
            f"variants violating any ordering fact: {self.n_fact_violations}/{len(self.rows)}"
        )


def _session_with(spec_override: DeviceSpec) -> MeasurementSession:
    devices = []
    for base in (CPU_I7_8700, IGPU_UHD_630, DGPU_GTX_1080TI):
        spec = spec_override if base.name == spec_override.name else base
        devices.append(Device(spec, DeviceState.IDLE))
    return MeasurementSession(devices)


def _check_facts(session: MeasurementSession) -> tuple[bool, bool, bool, bool]:
    f1 = (
        session.measure(SIMPLE, "cpu", 8, "warm").throughput_gbit_s
        > session.measure(SIMPLE, "dgpu", 8, "warm").throughput_gbit_s
    )
    f2 = (
        session.measure(MNIST_DEEP, "dgpu", 1 << 16, "warm").throughput_gbit_s
        > session.measure(MNIST_DEEP, "cpu", 1 << 16, "warm").throughput_gbit_s
    )
    f3 = (
        session.measure(MNIST_SMALL, "dgpu", 512, "idle").elapsed_s
        > session.measure(MNIST_SMALL, "dgpu", 512, "warm").elapsed_s
    )
    draws = {
        name: m.avg_power_w
        for name, m in session.measure_all_devices(MNIST_SMALL, 1024, "warm").items()
    }
    f4 = min(draws, key=draws.get) == "uhd-630"
    return f1, f2, f3, f4


def _accuracy(session: MeasurementSession, seed: int) -> float:
    dataset = generate_dataset(
        "throughput", specs=list(PAPER_MODELS), batches=_EVAL_BATCHES, session=session
    )
    scores = cross_val_score(
        default_estimator(seed),
        dataset.x,
        dataset.y,
        cv=StratifiedKFold(3, random_state=seed),
    )
    return float(scores.mean())


def run_sensitivity(
    factors: tuple[float, ...] = (0.5, 2.0), seed: int = 7
) -> SensitivityResult:
    """Perturb every calibration constant and re-derive the conclusions."""
    baseline = _accuracy(MeasurementSession(), seed)
    result = SensitivityResult(baseline_accuracy=baseline)
    for label, base, field_name in PERTURBED_FIELDS:
        for factor in factors:
            perturbed = Perturbation(label, base, field_name, factor)
            session = _session_with(perturbed.apply())
            result.rows.append(
                SensitivityRow(
                    label=label,
                    factor=factor,
                    accuracy=_accuracy(session, seed),
                    facts=_check_facts(session),
                )
            )
    return result


@register(
    "sensitivity",
    "(QA)",
    "Calibration robustness: perturb constants x0.5/x2, re-check conclusions",
)
def _run(**kwargs) -> SensitivityResult:
    return run_sensitivity(**kwargs)
