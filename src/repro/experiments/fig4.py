"""Fig. 4 — watt-seconds (joules) per classification run (§IV-C).

Same grid as Fig. 3, different axis: the total energy each device needs to
classify the batch, with the paper's accounting (charge every involved
component; exclude the dGPU when unused).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.fig3 import DEVICE_STATES, FIG3_BATCHES, curve_label
from repro.experiments.registry import register
from repro.experiments.report import render_series
from repro.nn.builders import ModelSpec
from repro.nn.zoo import PAPER_MODELS
from repro.telemetry.recorder import SweepRecorder
from repro.telemetry.session import MeasurementSession

__all__ = ["run_fig4", "Fig4Result"]


def run_fig4(
    models: "tuple[ModelSpec, ...]" = PAPER_MODELS,
    batches: "tuple[int, ...]" = FIG3_BATCHES,
    session: MeasurementSession | None = None,
) -> "Fig4Result":
    """Execute the energy sweep (same cells as Fig. 3, joule series)."""
    sess = session if session is not None else MeasurementSession()
    recorder = SweepRecorder()
    for spec in models:
        for device, gpu_state in DEVICE_STATES:
            dev_name = sess.device(device).name
            for batch in batches:
                recorder.add(sess.measure(spec, dev_name, batch, gpu_state))
    return Fig4Result(recorder=recorder, models=tuple(m.name for m in models))


@dataclass
class Fig4Result:
    """The Fig. 4 grid plus rendering."""

    recorder: SweepRecorder
    models: tuple[str, ...]

    def series(self, model: str, device: str, gpu_state: str):
        """(batch, joules) series for one curve of the grid."""
        dev_name = MeasurementSession().device(device).name
        return self.recorder.series(model, dev_name, gpu_state, "energy")

    def winner(self, model: str, batch: int, gpu_state: str) -> str:
        """Device class with the lowest joules at one grid point.

        The dGPU's cell is read at the requested start state; CPU/iGPU
        cells are state-independent.
        """
        sess = MeasurementSession()
        best, best_j = None, float("inf")
        for device, state in DEVICE_STATES:
            if device == "dgpu" and state != gpu_state:
                continue
            dev_name = sess.device(device).name
            j = self.recorder.get(model, dev_name, state, batch).joules
            if j < best_j:
                best, best_j = device, j
        return best

    def render(self) -> str:
        out = []
        for model in self.models:
            out.append(f"== Fig. 4: {model} (joules) ==")
            for device, state in DEVICE_STATES:
                out.append(render_series(curve_label(device, state), self.series(model, device, state), "J"))
            out.append("")
        return "\n".join(out)


@register("fig4", "Fig. 4", "Joules per classification per device/model/batch")
def _run(**kwargs) -> Fig4Result:
    return run_fig4(**kwargs)
