"""Crossover extraction: paper-vs-measured device flip points.

The §IV-C narrative is a list of crossovers ("the CPU performs better only
for sample sizes up to 2048", ...).  This experiment extracts the measured
flip points from the characterization sweep and renders them against the
paper's claimed values — the per-figure comparison table of EXPERIMENTS.md,
regenerated rather than transcribed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.registry import register
from repro.experiments.report import render_table
from repro.nn.builders import ModelSpec
from repro.nn.zoo import CIFAR10, MNIST_CNN, MNIST_DEEP, MNIST_SMALL, SIMPLE
from repro.telemetry.session import MeasurementSession

__all__ = ["CrossoverClaim", "CrossoverResult", "run_crossovers", "BATCHES"]

BATCHES: tuple[int, ...] = tuple(2**k for k in range(19))


@dataclass(frozen=True)
class CrossoverClaim:
    """One paper claim: 'the CPU wins up to `paper_batch` samples'.

    ``metric`` is 'throughput' or 'latency'; ``gpu_state`` fixes the dGPU
    start state; ``paper_batch=None`` encodes "the CPU wins at every size
    tested".
    """

    spec: ModelSpec
    metric: str
    gpu_state: str
    paper_batch: "int | None"
    paper_ref: str


#: The §IV-C claims, verbatim (CPU-vs-dGPU flip points).
PAPER_CLAIMS: tuple[CrossoverClaim, ...] = (
    CrossoverClaim(SIMPLE, "throughput", "warm", 2048, "Fig. 3(a)"),
    CrossoverClaim(SIMPLE, "throughput", "idle", None, "Fig. 3(a)"),
    CrossoverClaim(MNIST_SMALL, "latency", "warm", 4, "Fig. 3(b)"),
    CrossoverClaim(MNIST_SMALL, "latency", "idle", 32, "Fig. 3(b)"),
    CrossoverClaim(MNIST_DEEP, "throughput", "warm", 8, "Fig. 3(c)"),
    CrossoverClaim(MNIST_DEEP, "throughput", "idle", 8, "Fig. 3(c)"),
    CrossoverClaim(MNIST_CNN, "throughput", "warm", 32, "Fig. 3(d)"),
    CrossoverClaim(MNIST_CNN, "throughput", "idle", 256, "Fig. 3(d)"),
    CrossoverClaim(CIFAR10, "throughput", "warm", 8, "Fig. 3(e)"),
    CrossoverClaim(CIFAR10, "throughput", "idle", 128, "Fig. 3(e)"),
)


def measure_crossover(
    session: MeasurementSession, claim: CrossoverClaim
) -> "int | None":
    """Largest batch up to which the CPU beats the dGPU (None = all sizes)."""
    last_win = None
    for batch in BATCHES:
        cpu = session.measure(claim.spec, "cpu", batch, "warm")
        gpu = session.measure(claim.spec, "dgpu", batch, claim.gpu_state)
        if claim.metric == "throughput":
            cpu_wins = cpu.throughput_gbit_s > gpu.throughput_gbit_s
        else:
            cpu_wins = cpu.latency_ms < gpu.latency_ms
        if cpu_wins:
            last_win = batch
        else:
            return last_win
    return None  # CPU won everywhere tested


@dataclass(frozen=True)
class CrossoverRow:
    """One claim with its measured flip point."""
    claim: CrossoverClaim
    measured: "int | None"

    @property
    def ratio(self) -> "float | None":
        """measured / paper (None when either side is 'all sizes')."""
        if self.claim.paper_batch is None or self.measured is None:
            return None
        return self.measured / self.claim.paper_batch

    @property
    def agrees_in_kind(self) -> bool:
        """Same qualitative outcome (finite flip vs CPU-wins-everywhere)."""
        return (self.claim.paper_batch is None) == (self.measured is None)


@dataclass
class CrossoverResult:
    """All crossover rows plus summary statistics."""
    rows: list[CrossoverRow] = field(default_factory=list)

    @property
    def max_ratio_deviation(self) -> float:
        """Largest |log2(measured/paper)| over comparable rows."""
        import math

        devs = [abs(math.log2(r.ratio)) for r in self.rows if r.ratio]
        return max(devs) if devs else 0.0

    def render(self) -> str:
        def show(v):
            return "all sizes" if v is None else str(v)

        body = [
            (
                r.claim.paper_ref,
                r.claim.spec.name,
                r.claim.metric,
                r.claim.gpu_state,
                show(r.claim.paper_batch),
                show(r.measured),
                "-" if r.ratio is None else f"{r.ratio:g}x",
            )
            for r in self.rows
        ]
        table = render_table(
            ("figure", "model", "metric", "dGPU state",
             "paper: CPU wins <=", "measured", "ratio"),
            body,
            title="CPU-vs-dGPU crossovers, paper vs measured",
        )
        return (
            f"{table}\nlargest deviation: "
            f"2^{self.max_ratio_deviation:.1f} in batch position"
        )


def run_crossovers(session: MeasurementSession | None = None) -> CrossoverResult:
    """Extract every §IV-C crossover from the simulated testbed."""
    sess = session if session is not None else MeasurementSession()
    return CrossoverResult(
        rows=[CrossoverRow(claim=c, measured=measure_crossover(sess, c)) for c in PAPER_CLAIMS]
    )


@register(
    "crossovers",
    "§IV-C",
    "Paper-vs-measured device crossover positions (CPU vs dGPU)",
)
def _run(**kwargs) -> CrossoverResult:
    return run_crossovers(**kwargs)
