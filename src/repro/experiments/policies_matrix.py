"""Per-policy scheduler quality matrix (extension of Tables II/III).

The paper evaluates the throughput and energy policies (Fig. 6) and lists
latency as a supported target (Fig. 5).  This experiment completes the
matrix: for each of the three policies it trains the production forest on
that policy's labelled dataset and reports seen-model CV accuracy,
unseen-architecture accuracy and weighted F1 — demonstrating the claim
that the same machinery serves any optimization target.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.fig6 import FIG6_BATCHES
from repro.experiments.registry import register
from repro.experiments.report import fmt_pct, render_table
from repro.ml.metrics import f1_score
from repro.ml.model_selection import StratifiedKFold, cross_val_score
from repro.nn.zoo import UNSEEN_SPECS
from repro.sched.dataset import device_class_index, generate_dataset
from repro.sched.features import encode_point
from repro.sched.policies import Policy
from repro.sched.predictor import DevicePredictor, default_estimator
from repro.telemetry.session import MeasurementSession

__all__ = ["PolicyRow", "PolicyMatrixResult", "run_policy_matrix"]


@dataclass(frozen=True)
class PolicyRow:
    """Quality of the scheduler under one policy."""

    policy: str
    seen_accuracy: float
    seen_f1: float
    unseen_accuracy: float
    class_distribution: dict[str, float]


@dataclass
class PolicyMatrixResult:
    """One quality row per policy, renderable."""
    rows: list[PolicyRow] = field(default_factory=list)

    def row(self, policy: str) -> PolicyRow:
        """Fetch a row by policy value; unknown policies raise."""
        for r in self.rows:
            if r.policy == policy:
                return r
        raise KeyError(f"no row for policy {policy!r}")

    def render(self) -> str:
        body = [
            (
                r.policy,
                fmt_pct(r.seen_accuracy),
                fmt_pct(r.seen_f1),
                fmt_pct(r.unseen_accuracy),
                ", ".join(f"{k}:{v:.0%}" for k, v in r.class_distribution.items()),
            )
            for r in self.rows
        ]
        return render_table(
            ("policy", "seen acc", "seen F1", "unseen acc", "label mix"),
            body,
            title="Scheduler quality per policy (extension)",
        )


def _unseen_accuracy(
    predictor: DevicePredictor, policy: Policy, session: MeasurementSession
) -> float:
    hits = total = 0
    for spec in UNSEEN_SPECS:
        for state in ("warm", "idle"):
            feats = np.vstack([encode_point(spec, b, state) for b in FIG6_BATCHES])
            preds = predictor.predict_batch(feats)
            for batch, pred in zip(FIG6_BATCHES, preds):
                oracle = session.best_device(spec, batch, state, policy.metric)
                hits += int(pred) == device_class_index(oracle)
                total += 1
    return hits / total


def run_policy_matrix(seed: int = 7, cv_splits: int = 5) -> PolicyMatrixResult:
    """Train + evaluate the forest under every policy."""
    session = MeasurementSession()
    result = PolicyMatrixResult()
    for policy in (Policy.THROUGHPUT, Policy.LATENCY, Policy.ENERGY):
        dataset = generate_dataset(policy, session=session)
        cv = StratifiedKFold(n_splits=cv_splits, random_state=seed)
        acc = float(
            cross_val_score(default_estimator(seed), dataset.x, dataset.y, cv=cv).mean()
        )
        f1 = float(
            cross_val_score(
                default_estimator(seed), dataset.x, dataset.y, cv=cv,
                scoring=lambda yt, yp: f1_score(yt, yp),
            ).mean()
        )
        predictor = DevicePredictor(policy).fit(dataset)
        unseen = _unseen_accuracy(predictor, policy, session)
        result.rows.append(
            PolicyRow(
                policy=policy.value,
                seen_accuracy=acc,
                seen_f1=f1,
                unseen_accuracy=unseen,
                class_distribution=dataset.class_distribution(),
            )
        )
    return result


@register(
    "policies",
    "(ext.)",
    "Seen/unseen accuracy + F1 for all three policies (incl. latency)",
)
def _run(**kwargs) -> PolicyMatrixResult:
    return run_policy_matrix(**kwargs)
