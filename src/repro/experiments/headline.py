"""The §I/§VIII headline numbers.

* **92.5% prediction accuracy** on models the scheduler was trained on —
  stratified-CV accuracy of the random forest on the full scheduler set.
* **91% on unseen models** — the combined Fig. 6 score.
* **Energy savings up to 10%** — the energy-policy scheduler vs the best
  *static* single-device placement, over per-model batch-sweep workloads
  with mixed dGPU states.  A static placement must commit to one device
  for the whole workload; the scheduler switches per request, and the gap
  is the savings ("up to": we report the per-workload maximum and mean).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.fig6 import run_fig6
from repro.experiments.registry import register
from repro.experiments.report import fmt_pct, render_table
from repro.ml.model_selection import StratifiedKFold, cross_val_score
from repro.nn.zoo import PAPER_MODELS
from repro.sched.dataset import generate_dataset
from repro.sched.features import encode_point
from repro.sched.policies import Policy
from repro.sched.predictor import DevicePredictor, default_estimator
from repro.telemetry.session import GPU_STATES, MeasurementSession

__all__ = ["HeadlineResult", "run_headline", "energy_savings"]

_EVAL_BATCHES: tuple[int, ...] = tuple(2**k for k in range(17))


@dataclass
class HeadlineResult:
    """All three headline quantities."""

    seen_accuracy: float
    unseen_accuracy: float
    savings_per_model: dict[str, float] = field(default_factory=dict)

    @property
    def max_savings(self) -> float:
        """Largest per-workload energy saving."""
        return max(self.savings_per_model.values())

    @property
    def mean_savings(self) -> float:
        """Mean per-workload energy saving."""
        return float(np.mean(list(self.savings_per_model.values())))

    def render(self) -> str:
        rows = [
            ("prediction accuracy (trained-on models)", fmt_pct(self.seen_accuracy)),
            ("prediction accuracy (unseen models)", fmt_pct(self.unseen_accuracy)),
            ("energy savings vs best static device (max)", fmt_pct(self.max_savings)),
            ("energy savings vs best static device (mean)", fmt_pct(self.mean_savings)),
        ]
        table = render_table(("Headline claim", "Measured"), rows, title="Headline numbers")
        per_model = "\n".join(
            f"  {name}: {fmt_pct(s)}" for name, s in sorted(self.savings_per_model.items())
        )
        return f"{table}\nper-workload energy savings:\n{per_model}"


def energy_savings(
    predictor: DevicePredictor,
    session: MeasurementSession,
    batches: tuple[int, ...] = _EVAL_BATCHES,
) -> dict[str, float]:
    """Scheduler-vs-static energy comparison, one workload per paper model.

    Each workload classifies every batch size under both dGPU start states.
    The static competitor picks the single device minimizing the workload's
    *total* joules; the scheduler picks per request.
    """
    savings: dict[str, float] = {}
    for spec in PAPER_MODELS:
        static_totals: dict[str, float] = {}
        sched_total = 0.0
        for state in GPU_STATES:
            for batch in batches:
                cells = session.measure_all_devices(spec, batch, state)
                for dev_name, m in cells.items():
                    static_totals[dev_name] = static_totals.get(dev_name, 0.0) + m.joules
                choice = predictor.predict_device(spec, batch, state)
                sched_total += cells[session.device(choice).name].joules
        best_static = min(static_totals.values())
        savings[spec.name] = 1.0 - sched_total / best_static
    return savings


def run_headline(seed: int = 7, cv_splits: int = 5) -> HeadlineResult:
    """Regenerate all three headline numbers."""
    session = MeasurementSession()
    # One classifier per policy (Fig. 5); the headline accuracy is their
    # mean stratified-CV accuracy over the trained-on architectures.
    per_policy = []
    for policy in ("throughput", "energy"):
        ds = generate_dataset(policy, session=session)
        per_policy.append(
            float(
                cross_val_score(
                    default_estimator(seed),
                    ds.x,
                    ds.y,
                    cv=StratifiedKFold(n_splits=cv_splits, random_state=seed),
                ).mean()
            )
        )
    seen = float(np.mean(per_policy))
    unseen = run_fig6(seed=seed, session=session).combined_accuracy

    energy_ds = generate_dataset("energy", session=session)
    predictor = DevicePredictor(Policy.ENERGY).fit(energy_ds)
    savings = energy_savings(predictor, session)
    return HeadlineResult(
        seen_accuracy=seen, unseen_accuracy=unseen, savings_per_model=savings
    )


@register(
    "headline",
    "§I / §VIII",
    "92.5% seen / 91% unseen accuracy, up-to-10% energy savings",
)
def _run(**kwargs) -> HeadlineResult:
    return run_headline(**kwargs)
