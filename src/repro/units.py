"""Unit helpers shared across the library.

The paper reports throughput in Gbit/s, latency in milliseconds and energy
in joules.  Internally everything is SI (seconds, bytes, watts, joules); the
helpers here convert at the reporting boundary so no magic constants appear
in experiment code.
"""

from __future__ import annotations

__all__ = [
    "BITS_PER_BYTE",
    "KIB",
    "MIB",
    "GIB",
    "bytes_to_gbit",
    "throughput_gbit_s",
    "seconds_to_ms",
    "ms_to_seconds",
    "joules",
    "fmt_si",
]

BITS_PER_BYTE = 8
KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


def bytes_to_gbit(n_bytes: float) -> float:
    """Convert a byte count to gigabits (decimal giga, as in the paper)."""
    return n_bytes * BITS_PER_BYTE / 1e9


def throughput_gbit_s(n_bytes: float, seconds: float) -> float:
    """Sustained throughput in Gbit/s for ``n_bytes`` moved in ``seconds``."""
    if seconds <= 0.0:
        raise ValueError(f"elapsed time must be positive, got {seconds!r}")
    return bytes_to_gbit(n_bytes) / seconds


def seconds_to_ms(seconds: float) -> float:
    """Seconds -> milliseconds."""
    return seconds * 1e3


def ms_to_seconds(ms: float) -> float:
    """Milliseconds -> seconds."""
    return ms * 1e-3


def joules(watts: float, seconds: float) -> float:
    """Energy for a constant draw of ``watts`` over ``seconds``."""
    if seconds < 0.0:
        raise ValueError(f"duration must be non-negative, got {seconds!r}")
    return watts * seconds


_SI_PREFIXES = (
    (1e12, "T"),
    (1e9, "G"),
    (1e6, "M"),
    (1e3, "K"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "u"),
    (1e-9, "n"),
)


def fmt_si(value: float, unit: str = "", precision: int = 3) -> str:
    """Format ``value`` with an SI prefix, e.g. ``fmt_si(2.5e9, 'bit/s')``.

    Used by the report renderer so the regenerated tables read like the
    paper's axes (``20 Gbit/s``, ``3.35 ms``, ``10 KJ``).
    """
    if value == 0.0:
        return f"0 {unit}".rstrip()
    mag = abs(value)
    for scale, prefix in _SI_PREFIXES:
        if mag >= scale:
            return f"{value / scale:.{precision}g} {prefix}{unit}".rstrip()
    scale, prefix = _SI_PREFIXES[-1]
    return f"{value / scale:.{precision}g} {prefix}{unit}".rstrip()
