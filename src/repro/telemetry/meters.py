"""Power meters: live sampling of component draw over virtual time.

The paper reads board power from ``nvidia-smi`` and package power from
Intel PCM "in a live manner" (§III-A1).  :class:`EnergyMeter` reproduces
that interface over the simulated timeline: commands deposit
(start, end, watts) intervals, and the meter can be sampled at any virtual
timestamp or integrated over a window.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

__all__ = ["PowerSample", "EnergyMeter"]


@dataclass(frozen=True)
class PowerSample:
    """Draw of one component over one interval of virtual time."""

    start_s: float
    end_s: float
    watts: float

    def __post_init__(self) -> None:
        if self.end_s < self.start_s:
            raise ValueError("interval ends before it starts")
        if self.watts < 0.0:
            raise ValueError(f"watts must be >= 0, got {self.watts}")

    @property
    def joules(self) -> float:
        """Energy of this interval (watts x duration)."""
        return self.watts * (self.end_s - self.start_s)


@dataclass
class EnergyMeter:
    """Per-component power trace with sampling and integration.

    ``idle_watts`` is reported whenever no interval covers the queried
    time (the component's floor draw).
    """

    component: str
    idle_watts: float = 0.0
    _samples: list[PowerSample] = field(default_factory=list)

    def record(self, start_s: float, end_s: float, watts: float) -> None:
        """Append an activity interval; intervals must be non-overlapping
        and time-ordered (queues are in-order, so this holds naturally)."""
        if self._samples and start_s < self._samples[-1].end_s - 1e-15:
            raise ValueError(
                f"{self.component}: overlapping interval at {start_s} "
                f"(last ends {self._samples[-1].end_s})"
            )
        self._samples.append(PowerSample(start_s, end_s, watts))

    def sample(self, t: float) -> float:
        """Instantaneous draw at virtual time ``t`` (the nvidia-smi poll)."""
        i = bisect.bisect_right(self._samples, t, key=lambda s: s.start_s) - 1
        if i >= 0 and self._samples[i].start_s <= t < self._samples[i].end_s:
            return self._samples[i].watts
        return self.idle_watts

    def energy(self, start_s: float = 0.0, end_s: float | None = None) -> float:
        """Joules consumed in [start, end] including the idle floor."""
        if end_s is None:
            end_s = self._samples[-1].end_s if self._samples else start_s
        if end_s < start_s:
            raise ValueError("window ends before it starts")
        total = self.idle_watts * (end_s - start_s)
        for s in self._samples:
            lo = max(s.start_s, start_s)
            hi = min(s.end_s, end_s)
            if hi > lo:
                total += (s.watts - self.idle_watts) * (hi - lo)
        return total

    @property
    def n_samples(self) -> int:
        """Number of recorded activity intervals."""
        return len(self._samples)
