"""Wall-clock profiling helpers for the serving/cluster hot paths.

The perf work in this repo is gated on evidence: every optimization of the
request path (decision caching, bulk event injection, the allocation diet)
started from a cProfile of the cluster bench, not a guess.  This module
packages that workflow so ``make profile-cluster`` — or any test — can
reproduce it:

    from repro.telemetry.profiling import profiled

    with profiled(out="cluster.prof", top=25):
        router.serve_trace(trace)

prints the top cumulative-time functions and (optionally) dumps the raw
stats for ``snakeviz``/``pstats`` spelunking.  Pure stdlib — no new
dependencies.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from contextlib import contextmanager
from typing import Iterator

__all__ = ["profiled", "profile_to_text"]


def profile_to_text(
    profile: cProfile.Profile, top: int = 25, sort: str = "cumulative"
) -> str:
    """Render a finished profile as a top-N table (one string, no I/O)."""
    buffer = io.StringIO()
    stats = pstats.Stats(profile, stream=buffer)
    stats.sort_stats(sort).print_stats(top)
    return buffer.getvalue()


@contextmanager
def profiled(
    out: "str | None" = None,
    top: int = 25,
    sort: str = "cumulative",
    echo: bool = True,
) -> Iterator[cProfile.Profile]:
    """Profile the enclosed block with :mod:`cProfile`.

    Parameters
    ----------
    out:
        Path for the raw stats dump (``.prof``, loadable by ``pstats`` /
        ``snakeviz``); None skips the dump.
    top:
        How many functions the printed table shows.
    sort:
        ``pstats`` sort key (default ``'cumulative'``).
    echo:
        Print the table on exit (set False to only collect/dump).

    Yields the live :class:`cProfile.Profile` so callers can inspect it
    after the block.
    """
    profile = cProfile.Profile()
    profile.enable()
    try:
        yield profile
    finally:
        profile.disable()
        if out is not None:
            profile.dump_stats(out)
        if echo:
            text = profile_to_text(profile, top=top, sort=sort)
            if out is not None:
                text += f"\nraw stats dumped to {out}\n"
            print(text, end="")
