"""Sweep recorder: grids of measurements with CSV/JSON export."""

from __future__ import annotations

import csv
import io
import json
from typing import Iterable, Iterator

from repro.errors import ExperimentError
from repro.telemetry.metrics import Measurement

__all__ = ["SweepRecorder"]

_CSV_FIELDS = (
    "model",
    "device",
    "gpu_state",
    "batch",
    "sample_bytes",
    "elapsed_s",
    "energy_j",
    "throughput_gbit_s",
    "latency_ms",
    "avg_power_w",
)


class SweepRecorder:
    """Collects measurements and answers grid queries.

    Keys are ``(model, device, gpu_state, batch)``; adding a duplicate key
    raises (a sweep should visit each cell once — re-running a sweep means
    a bug in the harness, not new data).
    """

    def __init__(self) -> None:
        self._grid: dict[tuple[str, str, str, int], Measurement] = {}

    def add(self, m: Measurement) -> None:
        """Record one sweep cell; duplicate keys raise."""
        key = m.key()
        if key in self._grid:
            raise ExperimentError(f"duplicate sweep cell {key}")
        self._grid[key] = m

    def extend(self, ms: Iterable[Measurement]) -> None:
        """Record many sweep cells."""
        for m in ms:
            self.add(m)

    def __len__(self) -> int:
        return len(self._grid)

    def __iter__(self) -> Iterator[Measurement]:
        return iter(self._grid.values())

    def get(self, model: str, device: str, gpu_state: str, batch: int) -> Measurement:
        """Fetch one cell by its exact grid key; missing cells raise."""
        try:
            return self._grid[(model, device, gpu_state, batch)]
        except KeyError:
            raise ExperimentError(
                f"missing sweep cell ({model}, {device}, {gpu_state}, {batch})"
            ) from None

    def select(
        self,
        model: str | None = None,
        device: str | None = None,
        gpu_state: str | None = None,
    ) -> list[Measurement]:
        """All cells matching the given filters, ordered by batch."""
        out = [
            m
            for m in self._grid.values()
            if (model is None or m.model == model)
            and (device is None or m.device == device)
            and (gpu_state is None or m.gpu_state == gpu_state)
        ]
        out.sort(key=lambda m: (m.model, m.device, m.gpu_state, m.batch))
        return out

    def batches(self, model: str) -> list[int]:
        """Distinct batch sizes recorded for a model, sorted."""
        return sorted({m.batch for m in self._grid.values() if m.model == model})

    def series(
        self, model: str, device: str, gpu_state: str, metric: str
    ) -> list[tuple[int, float]]:
        """(batch, value) series for one curve of Fig. 3/4."""
        cells = self.select(model=model, device=device, gpu_state=gpu_state)
        attr = {
            "throughput": "throughput_gbit_s",
            "latency": "latency_ms",
            "power": "avg_power_w",
            "energy": "joules",
        }.get(metric)
        if attr is None:
            raise ExperimentError(f"unknown metric {metric!r}")
        return [(m.batch, getattr(m, attr)) for m in cells]

    # -- export ---------------------------------------------------------------

    def to_csv(self) -> str:
        """Render the grid as CSV text (one row per cell)."""
        buf = io.StringIO()
        writer = csv.DictWriter(buf, fieldnames=_CSV_FIELDS)
        writer.writeheader()
        for m in sorted(self._grid.values(), key=lambda m: m.key()):
            writer.writerow({f: getattr(m, f) for f in _CSV_FIELDS})
        return buf.getvalue()

    def to_json(self) -> str:
        """Render the grid as a JSON list of cell dicts."""
        rows = [
            {f: getattr(m, f) for f in _CSV_FIELDS}
            for m in sorted(self._grid.values(), key=lambda m: m.key())
        ]
        return json.dumps(rows, indent=2)

    def save_csv(self, path) -> None:
        """Write the grid as CSV to a file path."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_csv())
