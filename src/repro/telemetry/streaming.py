"""Streaming quantile estimation: the P² algorithm (Jain & Chlamtac 1985).

Sort-based percentiles over an ever-growing sample list cost O(n log n)
per query and O(n) memory — fine for a figure, fatal for a serving node
asked for its p99 every few virtual milliseconds of a multi-hour flood.
:class:`P2Quantile` tracks one quantile with *five* markers updated in
O(1) per observation: the classic piecewise-parabolic (P²) interpolation
of the empirical quantile curve, no samples retained.

Accuracy is excellent on smooth distributions and within a few percent of
exact even on adversarial ones (constant, sorted-ascending, heavy-tailed,
bimodal — see the property tests).  The documented blind spot, shared by
every fixed-marker streaming estimator, is a *monotonically decreasing*
stream: a high quantile's markers anchor low early and cannot recover.
:class:`~repro.telemetry.serving.LatencyDigest` mitigates this by keeping
a large exact prefix (its estimators are seeded from real history) and
anything needing exactness keeps the exact path (``exact=True``).
"""

from __future__ import annotations

import numpy as np

__all__ = ["P2Quantile"]


class P2Quantile:
    """One streaming quantile estimate in O(1) memory and update time.

    Parameters
    ----------
    q:
        The target quantile in percent, e.g. ``99.0`` for p99 (percent to
        match :func:`np.percentile`'s convention).
    """

    __slots__ = ("q", "_p", "_heights", "_pos", "_desired", "_incr", "_n")

    def __init__(self, q: float):
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"quantile must be in [0, 100], got {q}")
        self.q = float(q)
        self._p = self.q / 100.0
        p = self._p
        self._heights: list[float] = []    # marker heights q0..q4
        self._pos = [0.0, 1.0, 2.0, 3.0, 4.0]          # marker positions
        self._desired = [0.0, 2 * p, 4 * p, 2 + 2 * p, 4.0]
        self._incr = (0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0)
        self._n = 0

    def __len__(self) -> int:
        return self._n

    def add(self, x: float) -> None:
        """Fold one observation into the estimate."""
        x = float(x)
        self._n += 1
        heights = self._heights
        if len(heights) < 5:
            # Warm-up: the first five observations become the markers.
            heights.append(x)
            heights.sort()
            return

        pos, desired = self._pos, self._desired

        # Locate the cell containing x, clamping the extremes.
        if x < heights[0]:
            heights[0] = x
            k = 0
        elif x >= heights[4]:
            heights[4] = x
            k = 3
        else:
            k = 0
            while k < 3 and x >= heights[k + 1]:
                k += 1

        for i in range(k + 1, 5):
            pos[i] += 1.0
        for i in range(5):
            desired[i] += self._incr[i]

        # Nudge the three interior markers toward their desired positions.
        for i in (1, 2, 3):
            d = desired[i] - pos[i]
            if (d >= 1.0 and pos[i + 1] - pos[i] > 1.0) or (
                d <= -1.0 and pos[i - 1] - pos[i] < -1.0
            ):
                d = 1.0 if d > 0.0 else -1.0
                candidate = self._parabolic(i, d)
                if not heights[i - 1] < candidate < heights[i + 1]:
                    candidate = self._linear(i, int(d))
                heights[i] = candidate
                pos[i] += d

    def _parabolic(self, i: int, d: float) -> float:
        h, n = self._heights, self._pos
        return h[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: int) -> float:
        h, n = self._heights, self._pos
        return h[i] + d * (h[i + d] - h[i]) / (n[i + d] - n[i])

    def extend(self, xs) -> None:
        """Fold a batch of observations (e.g. to seed from exact history)."""
        for x in xs:
            self.add(x)

    def estimate(self) -> float:
        """Current quantile estimate (exact while under five samples)."""
        if self._n == 0:
            raise ValueError("no samples recorded")
        if self._n < 5:
            return float(np.percentile(self._heights[: self._n], self.q))
        return float(self._heights[2])
