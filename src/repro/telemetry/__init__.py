"""Measurement harness: the PCM / nvidia-smi substitute (paper §III-A1).

:class:`~repro.telemetry.metrics.Measurement` is the atomic record —
throughput, latency, power, energy for one (model, device, state, batch)
point.  :class:`~repro.telemetry.session.MeasurementSession` produces them
through the OpenCL-style layer; :class:`~repro.telemetry.recorder.SweepRecorder`
collects grids of them and exports CSV for the figure harnesses.
"""

from repro.telemetry.fleet import FleetTelemetry, ResilienceCounters
from repro.telemetry.metrics import Measurement
from repro.telemetry.meters import EnergyMeter, PowerSample
from repro.telemetry.recorder import SweepRecorder
from repro.telemetry.serving import (
    BatchHistogram,
    DepthSeries,
    LatencyDigest,
    RollingLatencyWindow,
    ServingTelemetry,
)
from repro.telemetry.session import MeasurementSession
from repro.telemetry.streaming import P2Quantile

__all__ = [
    "Measurement",
    "P2Quantile",
    "EnergyMeter",
    "PowerSample",
    "SweepRecorder",
    "MeasurementSession",
    "LatencyDigest",
    "RollingLatencyWindow",
    "DepthSeries",
    "BatchHistogram",
    "ServingTelemetry",
    "FleetTelemetry",
    "ResilienceCounters",
]
