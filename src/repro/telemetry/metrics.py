"""The atomic measurement record used by every figure and table."""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import seconds_to_ms, throughput_gbit_s

__all__ = ["Measurement"]


@dataclass(frozen=True)
class Measurement:
    """One characterization point: a (model, device, state, batch) cell.

    Stores raw SI quantities; the reporting properties convert to the
    units the paper plots (Gbit/s, ms, W, J).
    """

    model: str
    device: str
    gpu_state: str          # 'warm' | 'idle' (dGPU start state for the run)
    batch: int
    sample_bytes: int
    elapsed_s: float
    energy_j: float

    def __post_init__(self) -> None:
        if self.batch <= 0:
            raise ValueError(f"batch must be positive, got {self.batch}")
        if self.elapsed_s <= 0.0:
            raise ValueError(f"elapsed_s must be positive, got {self.elapsed_s}")
        if self.energy_j < 0.0:
            raise ValueError(f"energy_j must be >= 0, got {self.energy_j}")

    @property
    def bytes_processed(self) -> int:
        """Total input bytes classified (batch x sample bytes)."""
        return self.batch * self.sample_bytes

    @property
    def throughput_gbit_s(self) -> float:
        """Sustained input throughput — Fig. 3's left axis."""
        return throughput_gbit_s(self.bytes_processed, self.elapsed_s)

    @property
    def latency_ms(self) -> float:
        """End-to-end batch latency — Fig. 3's right axis."""
        return seconds_to_ms(self.elapsed_s)

    @property
    def avg_power_w(self) -> float:
        """Mean draw over the run — Fig. 3's power curves."""
        return self.energy_j / self.elapsed_s

    @property
    def joules(self) -> float:
        """Total energy — Fig. 4's axis."""
        return self.energy_j

    @property
    def joules_per_sample(self) -> float:
        """Energy per classified sample."""
        return self.energy_j / self.batch

    def key(self) -> tuple[str, str, str, int]:
        """Grid key for recorder lookups."""
        return (self.model, self.device, self.gpu_state, self.batch)
