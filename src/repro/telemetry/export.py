"""Plot-ready exports for the figure sweeps.

The repo renders figures as text; for actual plotting this module emits
gnuplot/pgfplots-ready ``.dat`` files — one per (model, metric), one column
per device-state curve, log-friendly batch axis — plus the raw-grid CSV
the recorder already provides.
"""

from __future__ import annotations

import os

from repro.errors import ExperimentError
from repro.telemetry.recorder import SweepRecorder

__all__ = ["figure_dat", "export_figure_dats", "CURVES"]

#: Column order: (device spec name, dGPU start state, column header).
CURVES: tuple[tuple[str, str, str], ...] = (
    ("i7-8700", "warm", "cpu"),
    ("uhd-630", "warm", "igpu"),
    ("gtx-1080ti", "warm", "dgpu_warm"),
    ("gtx-1080ti", "idle", "dgpu_idle"),
)

_METRICS = ("throughput", "latency", "power", "energy")


def figure_dat(recorder: SweepRecorder, model: str, metric: str) -> str:
    """One gnuplot table: ``batch  cpu  igpu  dgpu_warm  dgpu_idle``.

    Missing cells raise — a partial sweep should fail loudly rather than
    silently plotting holes.
    """
    if metric not in _METRICS:
        raise ExperimentError(f"metric must be one of {_METRICS}, got {metric!r}")
    batches = recorder.batches(model)
    if not batches:
        raise ExperimentError(f"no sweep cells recorded for model {model!r}")
    series = {
        header: dict(recorder.series(model, device, state, metric))
        for device, state, header in CURVES
    }
    lines = ["# " + "\t".join(["batch"] + [h for _, _, h in CURVES])]
    for batch in batches:
        row = [str(batch)]
        for _, _, header in CURVES:
            try:
                row.append(f"{series[header][batch]:.9g}")
            except KeyError:
                raise ExperimentError(
                    f"sweep cell missing: model={model} curve={header} batch={batch}"
                ) from None
        lines.append("\t".join(row))
    return "\n".join(lines) + "\n"


def export_figure_dats(
    recorder: SweepRecorder,
    directory,
    models: "list[str] | None" = None,
    metrics: "tuple[str, ...]" = ("throughput", "latency", "power", "energy"),
) -> list[str]:
    """Write one .dat per (model, metric) into ``directory``; returns paths."""
    os.makedirs(directory, exist_ok=True)
    if models is None:
        models = sorted({m.model for m in recorder})
    written = []
    for model in models:
        for metric in metrics:
            path = os.path.join(directory, f"{model}_{metric}.dat")
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(figure_dat(recorder, model, metric))
            written.append(path)
    return written
