"""Fleet telemetry: aggregate many nodes' serving telemetry into one view.

Each cluster node owns a :class:`~repro.telemetry.serving.ServingTelemetry`
that its serving frontend deposits into.  :class:`FleetTelemetry` holds a
read-through reference to every node's sink and answers cluster-level
questions — merged latency percentiles, total shed rate, the fleet's
recent tail, per-node queue-depth series — without copying anything until
asked.  Attach once at node registration; the aggregates always reflect
the nodes' live state.
"""

from __future__ import annotations

import numpy as np

from repro.telemetry.serving import DepthSeries, ServingTelemetry

__all__ = ["FleetTelemetry"]


class FleetTelemetry:
    """Read-through aggregation over per-node :class:`ServingTelemetry`."""

    def __init__(self) -> None:
        self._nodes: dict[str, ServingTelemetry] = {}

    # -- registration ------------------------------------------------------

    def attach(self, name: str, telemetry: ServingTelemetry) -> None:
        """Register one node's telemetry sink under its node name."""
        existing = self._nodes.get(name)
        if existing is not None and existing is not telemetry:
            raise ValueError(f"node {name!r} already attached to a different sink")
        self._nodes[name] = telemetry

    def node(self, name: str) -> ServingTelemetry:
        """One node's sink (KeyError with the known names otherwise)."""
        try:
            return self._nodes[name]
        except KeyError:
            known = ", ".join(sorted(self._nodes)) or "<none>"
            raise KeyError(f"no telemetry for node {name!r}; attached: {known}") from None

    @property
    def node_names(self) -> list[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    # -- cluster counters --------------------------------------------------

    @property
    def n_served(self) -> int:
        return sum(t.n_served for t in self._nodes.values())

    @property
    def n_shed(self) -> int:
        return sum(t.n_shed for t in self._nodes.values())

    @property
    def n_degraded(self) -> int:
        return sum(t.n_degraded for t in self._nodes.values())

    @property
    def n_violations(self) -> int:
        return sum(t.n_violations for t in self._nodes.values())

    @property
    def shed_rate(self) -> float:
        """Fraction of fleet-admitted traffic shed at the node layer."""
        total = self.n_served + self.n_shed
        return self.n_shed / total if total else 0.0

    # -- cluster latency ---------------------------------------------------

    def latency_samples(self) -> list[float]:
        """Every node's exactly-retained latencies, concatenated.

        Digests that have spilled to streaming contribute no raw samples
        (see :class:`~repro.telemetry.serving.LatencyDigest`).
        """
        out: list[float] = []
        for name in sorted(self._nodes):
            out.extend(self._nodes[name].latency.samples)
        return out

    def percentile(self, q: float) -> float:
        """q-th percentile latency across the whole fleet, in seconds.

        Exact (merged-sample :func:`np.percentile`) while every node's
        digest is still exact; once any digest has spilled to streaming,
        falls back to the sample-count-weighted mean of per-node P²
        estimates — an approximation, but one whose cost stays constant
        over an arbitrarily long flood.
        """
        digests = [
            t.latency for t in self._nodes.values() if len(t.latency)
        ]
        if not digests:
            raise ValueError("no latency samples recorded fleet-wide")
        if all(d.is_exact for d in digests):
            return float(np.percentile(self.latency_samples(), q))
        total = sum(len(d) for d in digests)
        return float(
            sum(len(d) * d.percentile(q) for d in digests) / total
        )

    @property
    def p50_s(self) -> float:
        return self.percentile(50.0)

    @property
    def p95_s(self) -> float:
        return self.percentile(95.0)

    @property
    def p99_s(self) -> float:
        return self.percentile(99.0)

    def recent_p99_s(self) -> "float | None":
        """Tail of the fleet's *recent* windows (None before any service).

        This is the cheap signal the autoscaler compares against the SLO:
        merged over each node's bounded rolling window, so its cost stays
        constant no matter how long the fleet has been serving.
        """
        merged: list[float] = []
        for telemetry in self._nodes.values():
            merged.extend(telemetry.recent.samples)
        if not merged:
            return None
        return float(np.percentile(merged, 99.0))

    # -- per-node views ----------------------------------------------------

    @property
    def max_queue_depth(self) -> int:
        """Peak per-model queue depth observed anywhere in the fleet."""
        return max((t.max_queue_depth for t in self._nodes.values()), default=0)

    def depth_series(self, node: str, model: str) -> DepthSeries:
        """One node's depth-over-time series for one model queue."""
        return self.node(node).depth_series(model)

    def snapshot(self) -> dict:
        """Cluster rollup plus one sub-snapshot per node."""
        out: dict = {
            "nodes": len(self),
            "served": self.n_served,
            "shed": self.n_shed,
            "degraded": self.n_degraded,
            "violations": self.n_violations,
            "shed_rate": self.shed_rate,
            "max_queue_depth": self.max_queue_depth,
        }
        if any(len(t.latency) for t in self._nodes.values()):
            out.update(
                p50_ms=self.p50_s * 1e3,
                p95_ms=self.p95_s * 1e3,
                p99_ms=self.p99_s * 1e3,
            )
        recent = self.recent_p99_s()
        if recent is not None:
            out["recent_p99_ms"] = recent * 1e3
        out["per_node"] = {
            name: telemetry.snapshot()
            for name, telemetry in sorted(self._nodes.items())
        }
        return out
