"""Fleet telemetry: aggregate many nodes' serving telemetry into one view.

Each cluster node owns a :class:`~repro.telemetry.serving.ServingTelemetry`
that its serving frontend deposits into.  :class:`FleetTelemetry` holds a
read-through reference to every node's sink and answers cluster-level
questions — merged latency percentiles, total shed rate, the fleet's
recent tail, per-node queue-depth series — without copying anything until
asked.  Attach once at node registration; the aggregates always reflect
the nodes' live state.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from repro.telemetry.serving import DepthSeries, ServingTelemetry

__all__ = ["ResilienceCounters", "FleetTelemetry"]


@dataclass
class ResilienceCounters:
    """Fault/retry/breaker counters the resilience layer deposits.

    All zeros in a fault-free run; the router increments them as faults
    fire, crashes are detected, requests retry and breakers transition.
    """

    n_faults_injected: int = 0      # fault events that fired on the loop
    n_crashes_detected: int = 0     # heartbeat sweeps that found a crash
    n_failures: int = 0             # transient per-request launch failures
    n_timeouts: int = 0             # queued requests rescued by timeout
    n_retries: int = 0              # backoff retries scheduled
    n_redelivered: int = 0          # deliveries after the first (all causes)
    n_breaker_opens: int = 0
    n_breaker_half_opens: int = 0
    n_breaker_closes: int = 0
    n_shed_deadline: int = 0        # shed instead of retried: SLO passed
    n_shed_retry_budget: int = 0    # shed: delivery attempts exhausted

    def any(self) -> bool:
        """Whether anything at all has been recorded."""
        return any(v for v in asdict(self).values())


class FleetTelemetry:
    """Read-through aggregation over per-node :class:`ServingTelemetry`."""

    def __init__(self) -> None:
        self._nodes: dict[str, ServingTelemetry] = {}
        self.resilience = ResilienceCounters()
        # Optional cascade attachment: any object with snapshot() -> dict
        # (a repro.cascade CascadeTelemetry), set by a CascadeExecutor
        # serving through the cluster router; surfaced in snapshot().
        self.cascade: "object | None" = None
        # Optional event-loop attachment (see attach_loop): the loop whose
        # utilization counters this fleet's snapshot should surface.
        self._loop: "object | None" = None
        # Availability accounting: observed downtime per node, in virtual
        # seconds.  Down/up marks come from the router at crash *detection*
        # and probe-passed revival, so availability measures what clients
        # could observe, not the (unknowable) instant of the crash itself.
        self._downtime_s: dict[str, float] = {}
        self._down_since: dict[str, float] = {}

    # -- registration ------------------------------------------------------

    def attach(self, name: str, telemetry: ServingTelemetry) -> None:
        """Register one node's telemetry sink under its node name."""
        existing = self._nodes.get(name)
        if existing is not None and existing is not telemetry:
            raise ValueError(f"node {name!r} already attached to a different sink")
        self._nodes[name] = telemetry

    def attach_loop(self, loop) -> None:
        """Surface an event loop's utilization counters in :meth:`snapshot`.

        Opt-in (a shard worker attaches its group's loop so imbalance and
        window stalls are observable per shard): snapshots without an
        attachment are unchanged, which keeps the vectorized-vs-per-event
        equivalence comparisons — whose event *counts* legitimately differ
        — byte-identical.  ``loop`` needs only a ``utilization() -> dict``
        (see :meth:`repro.sim.engine.EventLoop.utilization`).
        """
        self._loop = loop

    def node(self, name: str) -> ServingTelemetry:
        """One node's sink (KeyError with the known names otherwise)."""
        try:
            return self._nodes[name]
        except KeyError:
            known = ", ".join(sorted(self._nodes)) or "<none>"
            raise KeyError(f"no telemetry for node {name!r}; attached: {known}") from None

    @property
    def node_names(self) -> list[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    # -- availability / goodput --------------------------------------------

    def mark_node_down(self, name: str, now: float) -> None:
        """A node left service involuntarily at virtual ``now``."""
        if name not in self._down_since:
            self._down_since[name] = float(now)

    def mark_node_up(self, name: str, now: float) -> None:
        """A down node rejoined at virtual ``now`` (idempotent)."""
        since = self._down_since.pop(name, None)
        if since is not None:
            self._downtime_s[name] = (
                self._downtime_s.get(name, 0.0) + float(now) - since
            )

    def downtime_s(self, name: str, now: float) -> float:
        """Observed downtime of one node through virtual ``now``."""
        down = self._downtime_s.get(name, 0.0)
        since = self._down_since.get(name)
        if since is not None:
            down += max(0.0, float(now) - since)
        return down

    def availability(self, now: float) -> float:
        """Time-weighted fraction of node-uptime over ``[0, now]``.

        1.0 with no recorded downtime; each node's observed down windows
        (detection -> probe-passed revival) count against it equally.
        """
        if not self._nodes or now <= 0.0:
            return 1.0
        total_down = sum(self.downtime_s(name, now) for name in self._nodes)
        return 1.0 - total_down / (len(self._nodes) * float(now))

    def goodput(self) -> float:
        """Fraction of finally-resolved requests served within their SLO.

        ``(served - violations) / (served + shed)`` — sheds of every kind
        (admission, deadline, retry budget) count against it, late answers
        too.  1.0 before any request resolves.
        """
        resolved = self.n_served + self.n_shed
        if not resolved:
            return 1.0
        return (self.n_served - self.n_violations) / resolved

    # -- cluster counters --------------------------------------------------

    @property
    def n_served(self) -> int:
        return sum(t.n_served for t in self._nodes.values())

    @property
    def n_shed(self) -> int:
        return sum(t.n_shed for t in self._nodes.values())

    @property
    def n_degraded(self) -> int:
        return sum(t.n_degraded for t in self._nodes.values())

    @property
    def n_violations(self) -> int:
        return sum(t.n_violations for t in self._nodes.values())

    @property
    def shed_rate(self) -> float:
        """Fraction of fleet-admitted traffic shed at the node layer."""
        total = self.n_served + self.n_shed
        return self.n_shed / total if total else 0.0

    # -- cluster latency ---------------------------------------------------

    def latency_samples(self) -> list[float]:
        """Every node's exactly-retained latencies, concatenated.

        Digests that have spilled to streaming contribute no raw samples
        (see :class:`~repro.telemetry.serving.LatencyDigest`).
        """
        out: list[float] = []
        for name in sorted(self._nodes):
            out.extend(self._nodes[name].latency.samples)
        return out

    def percentile(self, q: float) -> float:
        """q-th percentile latency across the whole fleet, in seconds.

        Exact (merged-sample :func:`np.percentile`) while every node's
        digest is still exact; once any digest has spilled to streaming,
        falls back to the sample-count-weighted mean of per-node P²
        estimates — an approximation, but one whose cost stays constant
        over an arbitrarily long flood.
        """
        digests = [
            t.latency for t in self._nodes.values() if len(t.latency)
        ]
        if not digests:
            raise ValueError("no latency samples recorded fleet-wide")
        if all(d.is_exact for d in digests):
            return float(np.percentile(self.latency_samples(), q))
        total = sum(len(d) for d in digests)
        return float(
            sum(len(d) * d.percentile(q) for d in digests) / total
        )

    @property
    def p50_s(self) -> float:
        return self.percentile(50.0)

    @property
    def p95_s(self) -> float:
        return self.percentile(95.0)

    @property
    def p99_s(self) -> float:
        return self.percentile(99.0)

    def recent_p99_s(self) -> "float | None":
        """Tail of the fleet's *recent* windows (None before any service).

        This is the cheap signal the autoscaler compares against the SLO:
        merged over each node's bounded rolling window, so its cost stays
        constant no matter how long the fleet has been serving.
        """
        merged: list[float] = []
        for telemetry in self._nodes.values():
            merged.extend(telemetry.recent.samples)
        if not merged:
            return None
        return float(np.percentile(merged, 99.0))

    # -- per-node views ----------------------------------------------------

    @property
    def max_queue_depth(self) -> int:
        """Peak per-model queue depth observed anywhere in the fleet."""
        return max((t.max_queue_depth for t in self._nodes.values()), default=0)

    def depth_series(self, node: str, model: str) -> DepthSeries:
        """One node's depth-over-time series for one model queue."""
        return self.node(node).depth_series(model)

    # -- tenant isolation --------------------------------------------------

    def tenant_snapshot(self) -> dict:
        """Fleet-wide per-tenant rollup (empty without tenant telemetry).

        Counters sum across nodes; the recent tail merges every node's
        rolling window for the tenant, mirroring :meth:`recent_p99_s` —
        the signal a repartitioner compares against the tenant's SLO.
        """
        merged: dict[str, dict] = {}
        windows: dict[str, list[float]] = {}
        for name in sorted(self._nodes):
            for tenant, stats in self._nodes[name].tenants.items():
                agg = merged.setdefault(
                    tenant, {"served": 0, "shed": 0, "violations": 0}
                )
                agg["served"] += stats.n_served
                agg["shed"] += stats.n_shed
                agg["violations"] += stats.n_violations
                windows.setdefault(tenant, []).extend(stats.recent.samples)
        for tenant, agg in merged.items():
            total = agg["served"] + agg["shed"]
            agg["shed_rate"] = agg["shed"] / total if total else 0.0
            samples = windows[tenant]
            if samples:
                agg["recent_p99_ms"] = float(np.percentile(samples, 99.0)) * 1e3
        return merged

    def online_snapshot(self) -> dict:
        """Fleet-wide online-predictor rollup (empty without one).

        Routing-side counters (decisions, fallback occupancy, drift
        invalidations) sum across nodes.  Predictor-side counters (refits,
        drift flags, recoveries) take the max instead: fleets normally
        share one :class:`~repro.sched.online.OnlinePredictor`, so every
        node reports the same fleet-wide totals and summing would
        multiply-count them.  Active flags merge as a set union.
        """
        per_node: dict[str, dict] = {}
        for name in sorted(self._nodes):
            fn = self._nodes[name].online
            if fn is None:
                continue
            snap = fn()
            if snap:
                per_node[name] = snap
        if not per_node:
            return {}
        decisions = sum(s["decisions"] for s in per_node.values())
        fallback = sum(s["fallback_decisions"] for s in per_node.values())
        flags: set[str] = set()
        for s in per_node.values():
            flags.update(s["predictor"].get("active_flags", ()))
        return {
            "nodes": len(per_node),
            "decisions": decisions,
            "fallback_decisions": fallback,
            "fallback_occupancy": fallback / decisions if decisions else 0.0,
            "drift_invalidations": sum(
                s["drift_invalidations"] for s in per_node.values()
            ),
            "refits": max(s["predictor"]["refits"] for s in per_node.values()),
            "drift_flags": max(
                s["predictor"]["drift_flags"] for s in per_node.values()
            ),
            "recoveries": max(
                s["predictor"]["recoveries"] for s in per_node.values()
            ),
            "active_flags": sorted(flags),
        }

    def snapshot(self) -> dict:
        """Cluster rollup plus one sub-snapshot per node."""
        out: dict = {
            "nodes": len(self),
            "served": self.n_served,
            "shed": self.n_shed,
            "degraded": self.n_degraded,
            "violations": self.n_violations,
            "shed_rate": self.shed_rate,
            "max_queue_depth": self.max_queue_depth,
        }
        if any(len(t.latency) for t in self._nodes.values()):
            out.update(
                p50_ms=self.p50_s * 1e3,
                p95_ms=self.p95_s * 1e3,
                p99_ms=self.p99_s * 1e3,
            )
        recent = self.recent_p99_s()
        if recent is not None:
            out["recent_p99_ms"] = recent * 1e3
        # Fault-free snapshots stay byte-identical: the resilience block
        # only appears once something was actually recorded.
        if self.resilience.any():
            out["resilience"] = asdict(self.resilience)
        if self.cascade is not None:
            out["cascade"] = self.cascade.snapshot()
        if self._loop is not None:
            out["event_loop"] = self._loop.utilization()
        tenants = self.tenant_snapshot()
        if tenants:
            out["tenants"] = tenants
        online = self.online_snapshot()
        if online:
            out["online"] = online
        out["per_node"] = {
            name: telemetry.snapshot()
            for name, telemetry in sorted(self._nodes.items())
        }
        return out
