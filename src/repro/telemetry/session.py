"""Measurement sessions: one-call characterization of a sweep point.

A :class:`MeasurementSession` owns the simulated testbed (all three
devices) and produces :class:`~repro.telemetry.metrics.Measurement`
records for any (model, device, gpu-state, batch) combination, via the
OpenCL-style layer.  It is the workhorse behind Fig. 3, Fig. 4 and the
scheduler's training-set generation.
"""

from __future__ import annotations

from repro.errors import ExperimentError
from repro.nn.builders import ModelSpec
from repro.ocl.device import Device, DeviceState
from repro.ocl.platform import get_all_devices
from repro.telemetry.metrics import Measurement

__all__ = ["MeasurementSession", "GPU_STATES"]

GPU_STATES = ("warm", "idle")


class MeasurementSession:
    """Characterizes models across the simulated testbed.

    The session uses :meth:`~repro.ocl.device.Device.preview` so sweep
    points are independent (each sees a pristine idle or warm device) —
    exactly how the paper measures its two dGPU curves side by side.
    """

    def __init__(self, devices: "list[Device] | None" = None, cache=None):
        self.devices: list[Device] = devices if devices is not None else get_all_devices()
        if not self.devices:
            raise ExperimentError("session needs at least one device")
        self._by_name = {d.name: d for d in self.devices}
        for d in self.devices:
            self._by_name.setdefault(d.device_class.value, d)
        # Duck-typed to avoid a telemetry -> sched import cycle; any object
        # with the MeasurementCache lookup/store signature works (see
        # repro.sched.persistence.MeasurementCache).
        self.cache = cache

    def device(self, name: str) -> Device:
        """Resolve a device by spec name or device-class value."""
        try:
            return self._by_name[name]
        except KeyError:
            known = ", ".join(sorted(self._by_name))
            raise ExperimentError(f"unknown device {name!r}; known: {known}") from None

    def device_names(self) -> list[str]:
        """Spec names of the session's devices, in testbed order."""
        return [d.name for d in self.devices]

    def measure(
        self,
        spec: ModelSpec,
        device: str,
        batch: int,
        gpu_state: str = "warm",
        local_size: int | None = None,
        pinned: bool = True,
    ) -> Measurement:
        """Characterize one sweep point.

        ``gpu_state`` selects the dGPU starting state; it is carried on the
        record even for CPU/iGPU runs (whose clocks do not ramp) so grid
        keys stay uniform.
        """
        if gpu_state not in GPU_STATES:
            raise ExperimentError(
                f"gpu_state must be one of {GPU_STATES}, got {gpu_state!r}"
            )
        dev = self.device(device)
        if self.cache is not None:
            hit = self.cache.lookup(
                spec, dev.spec, gpu_state, batch, local_size, pinned
            )
            if hit is not None:
                return hit
        state = DeviceState.WARM if gpu_state == "warm" else DeviceState.IDLE
        from repro.ocl.workgroup import workgroup_efficiency

        wg_eff = workgroup_efficiency(dev.spec, local_size)
        timing, energy = dev.preview(
            spec, batch, state=state, workgroup_eff=wg_eff, pinned=pinned
        )
        measurement = Measurement(
            model=spec.name,
            device=dev.name,
            gpu_state=gpu_state,
            batch=batch,
            sample_bytes=spec.sample_bytes,
            elapsed_s=timing.total_s,
            energy_j=energy.total_j,
        )
        if self.cache is not None:
            self.cache.store(
                spec, dev.spec, gpu_state, batch, local_size, pinned, measurement
            )
        return measurement

    def measure_all_devices(
        self, spec: ModelSpec, batch: int, gpu_state: str = "warm"
    ) -> dict[str, Measurement]:
        """One batch point on every device, keyed by device name."""
        return {
            d.name: self.measure(spec, d.name, batch, gpu_state) for d in self.devices
        }

    def best_device(
        self, spec: ModelSpec, batch: int, gpu_state: str, metric: str
    ) -> str:
        """Ground-truth oracle: the device optimizing ``metric``.

        ``metric`` is 'throughput', 'latency' or 'energy'.  This is the
        labelling function for the scheduler's training set (§V-B).
        """
        points = self.measure_all_devices(spec, batch, gpu_state)
        if metric == "throughput":
            return max(points, key=lambda d: points[d].throughput_gbit_s)
        if metric == "latency":
            return min(points, key=lambda d: points[d].latency_ms)
        if metric == "energy":
            return min(points, key=lambda d: points[d].joules)
        raise ExperimentError(
            f"metric must be throughput/latency/energy, got {metric!r}"
        )
