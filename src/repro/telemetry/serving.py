"""Serving-side telemetry: tail latencies, queue depths, batch shapes.

The characterization half of this package measures *one launch at a time*
(:class:`~repro.telemetry.metrics.Measurement`); a serving frontend needs
the complementary aggregate view — latency percentiles over thousands of
requests, queue depth as a function of virtual time, the distribution of
coalesced batch sizes, and counters for shed / SLO-violating requests.
These collectors are deliberately dependency-free so every layer (queues,
coalescer, workers, frontend) can deposit into one shared
:class:`ServingTelemetry` instance.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.telemetry.streaming import P2Quantile

__all__ = [
    "LatencyDigest",
    "RollingLatencyWindow",
    "DepthSeries",
    "BatchHistogram",
    "TenantStats",
    "ServingTelemetry",
]

#: Samples a digest keeps exactly before spilling to streaming estimators.
DIGEST_EXACT_BOUND = 65536

#: Quantiles every digest can still answer after the spill.
_DEFAULT_QUANTILES = (50.0, 95.0, 99.0)


class LatencyDigest:
    """Collects latency samples and reports percentiles (p50/p95/p99).

    Memory is bounded: the first ``bound`` samples are kept and queried
    exactly (sort-based :func:`np.percentile`); at the bound the digest
    *spills* — every tracked quantile is seeded by replaying the exact
    history into a :class:`~repro.telemetry.streaming.P2Quantile` and the
    sample list is dropped, so a node serving a week-long flood holds
    O(bound) floats, not O(requests).  Tracked quantiles are p50/p95/p99
    plus anything queried (or :meth:`track`-ed) before the spill; the mean
    is a running sum and stays exact forever.

    ``exact=True`` opts back into the unbounded keep-everything digest —
    the reference path, used by tests and small experiments that compare
    against :func:`np.percentile` literally.
    """

    def __init__(self, exact: bool = False, bound: int = DIGEST_EXACT_BOUND):
        if bound < 5:
            raise ValueError(f"bound must be >= 5, got {bound}")
        self.exact = bool(exact)
        self.bound = int(bound)
        self._samples: list[float] = []
        self._streams: dict[float, P2Quantile] = {}
        self._tracked: set[float] = set(_DEFAULT_QUANTILES)
        self._n = 0
        self._sum = 0.0
        self._spilled = False

    def add(self, latency_s: float) -> None:
        """Record one request's arrival-to-completion latency."""
        if latency_s < 0.0:
            raise ValueError(f"latency must be >= 0, got {latency_s}")
        latency_s = float(latency_s)
        self._n += 1
        self._sum += latency_s
        if self._spilled:
            for stream in self._streams.values():
                stream.add(latency_s)
            return
        self._samples.append(latency_s)
        if not self.exact and len(self._samples) >= self.bound:
            self._spill()

    def _spill(self) -> None:
        for q in sorted(self._tracked):
            stream = P2Quantile(q)
            stream.extend(self._samples)
            self._streams[q] = stream
        self._samples = []
        self._spilled = True

    def track(self, q: float) -> None:
        """Keep quantile ``q`` answerable after the exact bound is passed."""
        q = float(q)
        if self._spilled and q not in self._streams:
            raise ValueError(
                f"cannot start tracking q={q} after the digest spilled; "
                "track it before the exact bound or use exact=True"
            )
        self._tracked.add(q)

    @property
    def is_exact(self) -> bool:
        """True while percentiles are still computed from raw samples."""
        return not self._spilled

    def __len__(self) -> int:
        return self._n

    def percentile(self, q: float) -> float:
        """q-th percentile of recorded latency in seconds.

        Exact while under the bound (every queried quantile is
        auto-tracked for the streaming phase); a P² estimate afterwards.
        """
        if self._n == 0:
            raise ValueError("no latency samples recorded")
        q = float(q)
        if not self._spilled:
            self._tracked.add(q)
            return float(np.percentile(self._samples, q))
        try:
            return self._streams[q].estimate()
        except KeyError:
            raise ValueError(
                f"quantile {q} was not tracked before the digest spilled "
                f"(tracked: {sorted(self._streams)}); use exact=True or "
                "track() it early"
            ) from None

    @property
    def p50_s(self) -> float:
        return self.percentile(50.0)

    @property
    def p95_s(self) -> float:
        return self.percentile(95.0)

    @property
    def p99_s(self) -> float:
        return self.percentile(99.0)

    @property
    def mean_s(self) -> float:
        if self._n == 0:
            raise ValueError("no latency samples recorded")
        return self._sum / self._n

    @property
    def samples(self) -> tuple[float, ...]:
        """The exactly-retained samples, in arrival order (empty after the
        digest spills to streaming — fleet merges fall back to combining
        per-node estimates then)."""
        return tuple(self._samples)


class RollingLatencyWindow:
    """Bounded window of the most recent latency samples.

    The full :class:`LatencyDigest` keeps every sample, so its percentiles
    are an all-time view and cost O(n log n) per query.  A load balancer or
    autoscaler polling nodes every few milliseconds wants the *recent* tail
    at a bounded cost: this window keeps only the last ``maxlen`` samples,
    making percentile queries O(maxlen log maxlen) regardless of uptime.
    """

    def __init__(self, maxlen: int = 256):
        if maxlen < 1:
            raise ValueError(f"maxlen must be >= 1, got {maxlen}")
        self.maxlen = maxlen
        self._window: deque[float] = deque(maxlen=maxlen)
        # Percentile queries vastly outnumber samples in a fleet (every
        # routing probe reads p99, only completions add), so answers are
        # memoized per quantile until the window next changes.
        self._memo: dict[float, float] = {}

    def add(self, latency_s: float) -> None:
        """Record one latency sample (oldest samples roll off)."""
        if latency_s < 0.0:
            raise ValueError(f"latency must be >= 0, got {latency_s}")
        self._window.append(float(latency_s))
        if self._memo:
            self._memo.clear()

    def __len__(self) -> int:
        return len(self._window)

    def percentile(self, q: float) -> "float | None":
        """q-th percentile over the window (None while empty); memoized
        until the next :meth:`add`."""
        if not self._window:
            return None
        q = float(q)
        hit = self._memo.get(q)
        if hit is not None:
            return hit
        value = float(np.percentile(list(self._window), q))
        self._memo[q] = value
        return value

    @property
    def p99_s(self) -> "float | None":
        return self.percentile(99.0)

    @property
    def samples(self) -> tuple[float, ...]:
        """The windowed samples, oldest first."""
        return tuple(self._window)


class DepthSeries:
    """A step function of queue depth over virtual time."""

    def __init__(self) -> None:
        self._points: list[tuple[float, int]] = []

    def record(self, t: float, depth: int) -> None:
        """Record the depth observed at virtual time ``t`` (monotone t)."""
        if depth < 0:
            raise ValueError(f"depth must be >= 0, got {depth}")
        if self._points and t < self._points[-1][0]:
            raise ValueError(
                f"depth series must advance in time: {t} < {self._points[-1][0]}"
            )
        self._points.append((float(t), int(depth)))

    def __len__(self) -> int:
        return len(self._points)

    @property
    def points(self) -> list[tuple[float, int]]:
        return list(self._points)

    @property
    def max_depth(self) -> int:
        """Peak observed depth (0 for an empty series)."""
        return max((d for _, d in self._points), default=0)

    def depth_at(self, t: float) -> int:
        """Step-function value at time ``t`` (0 before the first point)."""
        depth = 0
        for ts, d in self._points:
            if ts > t:
                break
            depth = d
        return depth


class BatchHistogram:
    """Power-of-two histogram of coalesced batch sizes (in samples)."""

    def __init__(self) -> None:
        self._counts: dict[int, int] = {}
        self._n = 0
        self._total = 0

    def add(self, samples: int) -> None:
        """Record one dispatched batch of ``samples`` total samples."""
        if samples <= 0:
            raise ValueError(f"batch must be positive, got {samples}")
        bucket = int(math.log2(samples))
        self._counts[bucket] = self._counts.get(bucket, 0) + 1
        self._n += 1
        self._total += samples

    def __len__(self) -> int:
        return self._n

    @property
    def counts(self) -> dict[int, int]:
        """Bucket (floor log2 of samples) -> number of batches."""
        return dict(sorted(self._counts.items()))

    @property
    def mean_samples(self) -> float:
        """Mean samples per dispatched batch."""
        if self._n == 0:
            raise ValueError("no batches recorded")
        return self._total / self._n


class TenantStats:
    """One tenant's serving outcomes (multi-tenant partition placement).

    The isolation ledger: when tenants share (or are pinned apart on) one
    accelerator, per-tenant tails are the quantity the placement defends —
    a fleet-level p99 hides a latency tenant drowning under a batch
    tenant's flood.  Collected only when the frontend is given a tenant
    set, so single-tenant runs stay byte-identical.
    """

    __slots__ = ("n_served", "n_shed", "n_violations", "latency", "recent")

    def __init__(self) -> None:
        self.n_served = 0
        self.n_shed = 0
        self.n_violations = 0
        self.latency = LatencyDigest()
        self.recent = RollingLatencyWindow()

    def record_served(self, latency_s: float, violated: bool = False) -> None:
        """Record one served request attributed to this tenant."""
        self.n_served += 1
        if violated:
            self.n_violations += 1
        self.latency.add(latency_s)
        self.recent.add(latency_s)

    def record_shed(self) -> None:
        self.n_shed += 1

    @property
    def shed_rate(self) -> float:
        total = self.n_served + self.n_shed
        return self.n_shed / total if total else 0.0

    def snapshot(self) -> dict:
        out: dict = {
            "served": self.n_served,
            "shed": self.n_shed,
            "violations": self.n_violations,
            "shed_rate": self.shed_rate,
        }
        if len(self.latency):
            out.update(
                p50_ms=self.latency.p50_s * 1e3,
                p99_ms=self.latency.p99_s * 1e3,
            )
        if len(self.recent):
            out["recent_p99_ms"] = self.recent.p99_s * 1e3
        return out


@dataclass
class ServingTelemetry:
    """Everything the serving frontend emits, in one sink.

    * ``latency`` — per-request arrival→completion digest (served only).
    * ``recent`` — rolling window of the latest latencies (cheap tail).
    * ``queue_depth`` — per-model depth-over-time step series.
    * ``batch_sizes`` — histogram of coalesced batch sizes.
    * counters — served / shed / degraded / SLO-violation totals.
    """

    latency: LatencyDigest = field(default_factory=LatencyDigest)
    recent: RollingLatencyWindow = field(default_factory=RollingLatencyWindow)
    queue_depth: dict[str, DepthSeries] = field(default_factory=dict)
    batch_sizes: BatchHistogram = field(default_factory=BatchHistogram)
    n_served: int = 0
    n_shed: int = 0
    n_degraded: int = 0
    n_violations: int = 0
    n_failed: int = 0    # transient launch failures (fault injection)
    # Optional cascade attachment: any object with a snapshot() -> dict
    # (a repro.cascade CascadeTelemetry).  Set by the CascadeExecutor when
    # a cascade serves through this frontend; surfaced in snapshot().
    cascade: "object | None" = None
    # Per-tenant isolation ledger (multi-tenant partition placement).
    # Populated only when the frontend is constructed with a TenantSet;
    # empty otherwise, so single-tenant snapshots stay byte-identical.
    tenants: dict[str, TenantStats] = field(default_factory=dict)
    # Optional online-predictor attachment: a zero-arg callable returning
    # the online refresh stats dict, or None when no online predictor is
    # installed (see BacklogAwareScheduler.online_stats).  The frontend
    # wires this unconditionally; the block only appears in snapshots when
    # the callable yields something, so frozen-predictor snapshots stay
    # byte-identical.
    online: "object | None" = None

    def record_latency(self, latency_s: float) -> None:
        """Record a served request's latency in both digests at once."""
        self.latency.add(latency_s)
        self.recent.add(latency_s)

    def tenant(self, name: str) -> TenantStats:
        """The (auto-created) isolation ledger for one tenant."""
        if name not in self.tenants:
            self.tenants[name] = TenantStats()
        return self.tenants[name]

    def depth_series(self, model: str) -> DepthSeries:
        """The (auto-created) depth series for one model's queue."""
        if model not in self.queue_depth:
            self.queue_depth[model] = DepthSeries()
        return self.queue_depth[model]

    def record_depth(self, model: str, t: float, depth: int) -> None:
        self.depth_series(model).record(t, depth)

    @property
    def max_queue_depth(self) -> int:
        """Peak depth across every model queue."""
        return max((s.max_depth for s in self.queue_depth.values()), default=0)

    @property
    def shed_rate(self) -> float:
        """Fraction of submitted requests that were shed."""
        total = self.n_served + self.n_shed
        return self.n_shed / total if total else 0.0

    def snapshot(self) -> dict:
        """A plain-dict summary (for stats()/logging/benchmarks)."""
        out: dict = {
            "served": self.n_served,
            "shed": self.n_shed,
            "degraded": self.n_degraded,
            "violations": self.n_violations,
            "shed_rate": self.shed_rate,
            "max_queue_depth": self.max_queue_depth,
        }
        if self.n_failed:
            out["failed"] = self.n_failed
        if len(self.latency):
            out.update(
                p50_ms=self.latency.p50_s * 1e3,
                p95_ms=self.latency.p95_s * 1e3,
                p99_ms=self.latency.p99_s * 1e3,
            )
        if len(self.recent):
            out["recent_p99_ms"] = self.recent.p99_s * 1e3
        if len(self.batch_sizes):
            out["mean_batch_samples"] = self.batch_sizes.mean_samples
        if self.cascade is not None:
            out["cascade"] = self.cascade.snapshot()
        if self.online is not None:
            online = self.online()
            if online:
                out["online"] = online
        if self.tenants:
            out["tenants"] = {
                name: stats.snapshot()
                for name, stats in sorted(self.tenants.items())
            }
        return out
