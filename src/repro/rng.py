"""Deterministic random-number discipline.

Every stochastic component in the library accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None``.  :func:`ensure_rng` normalizes
all three into a ``Generator`` so experiments are reproducible end to end
from a single seed, and :func:`spawn` derives independent child streams so
parallel components never share state.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SeedLike", "ensure_rng", "spawn", "DEFAULT_SEED"]

#: Seed used by experiment harnesses when the caller does not provide one.
DEFAULT_SEED = 20220530  # IPPS 2022 conference start date

SeedLike = "int | np.random.Generator | None"


def ensure_rng(seed: "int | np.random.Generator | None") -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form.

    ``None`` maps to :data:`DEFAULT_SEED` (not OS entropy): the library's
    contract is that the default is deterministic, matching the experiment
    reproducibility requirements laid out in DESIGN.md §7.
    """
    if seed is None:
        return np.random.default_rng(DEFAULT_SEED)
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(f"seed must be int, Generator or None, got {type(seed).__name__}")


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators from ``rng``."""
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    return list(rng.spawn(n))
