"""Command-line driver: ``python -m repro.cli <experiment> [--out FILE]``.

Lists and regenerates the paper's tables and figures from the registry.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import get_experiment, list_experiments

__all__ = ["main"]


def main(argv: "list[str] | None" = None) -> int:
    """Parse arguments and run/list experiments; returns an exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures from 'The Best of Many Worlds' (IPPS 2022)",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help="experiment id (fig3, fig4, table1, table2, table3, fig6, "
        "headline, crossovers, policies, sensitivity); omit to list all",
    )
    parser.add_argument(
        "--all",
        metavar="DIR",
        dest="all_dir",
        help="run every registered experiment and write one rendered file "
        "per artifact into DIR (plus CSVs for the sweep experiments)",
    )
    parser.add_argument("--out", help="write rendered output to this file")
    parser.add_argument(
        "--csv",
        help="for fig3/fig4: also write the raw sweep grid as CSV",
    )
    parser.add_argument(
        "--dat-dir",
        help="for fig3/fig4: also write gnuplot-ready .dat files here",
    )
    args = parser.parse_args(argv)

    if args.all_dir:
        return _run_all(args.all_dir)

    if args.experiment is None:
        for exp in list_experiments():
            print(f"{exp.exp_id:10s} {exp.paper_ref:10s} {exp.description}")
        return 0

    exp = get_experiment(args.experiment)
    artifact = exp.runner()
    text = artifact.render()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)

    recorder = getattr(artifact, "recorder", None)
    if args.csv:
        if recorder is None:
            parser.error(f"--csv is only valid for sweep experiments, not {exp.exp_id}")
        recorder.save_csv(args.csv)
        print(f"wrote {args.csv}")
    if args.dat_dir:
        if recorder is None:
            parser.error(f"--dat-dir is only valid for sweep experiments, not {exp.exp_id}")
        from repro.telemetry.export import export_figure_dats

        paths = export_figure_dats(recorder, args.dat_dir)
        print(f"wrote {len(paths)} .dat files to {args.dat_dir}")
    return 0


def _run_all(directory: str) -> int:
    """Regenerate every artifact into ``directory`` (one file each)."""
    import os

    os.makedirs(directory, exist_ok=True)
    for exp in list_experiments():
        print(f"running {exp.exp_id} ({exp.paper_ref}) ...", flush=True)
        artifact = exp.runner()
        path = os.path.join(directory, f"{exp.exp_id}.txt")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(artifact.render() + "\n")
        recorder = getattr(artifact, "recorder", None)
        if recorder is not None:
            recorder.save_csv(os.path.join(directory, f"{exp.exp_id}.csv"))
    print(f"wrote {len(list_experiments())} artifacts to {directory}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
