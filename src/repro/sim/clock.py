"""A monotone virtual clock."""

from __future__ import annotations

__all__ = ["VirtualClock"]


class VirtualClock:
    """Simulation time in seconds; can only move forward."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance_to(self, t: float) -> float:
        """Move the clock to ``t`` (>= now); returns the new time."""
        if t < self._now:
            raise ValueError(f"clock cannot move backwards: {t} < {self._now}")
        self._now = float(t)
        return self._now

    def advance_by(self, dt: float) -> float:
        """Move the clock forward by ``dt`` (>= 0)."""
        if dt < 0.0:
            raise ValueError(f"cannot advance by negative dt {dt}")
        return self.advance_to(self._now + dt)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VirtualClock(now={self._now:.6f})"
