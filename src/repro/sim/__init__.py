"""Minimal discrete-event core for the streaming experiments.

The characterization sweeps are closed-form; the *adaptivity* claims
(§V: "respond quickly to dynamic fluctuations ... data bursts, application
overloads and system changes") need requests arriving over time against
devices whose state evolves.  :class:`~repro.sim.engine.EventLoop` provides
that: a heap of timestamped events, processes scheduling further events,
and a shared virtual clock.
"""

from repro.sim.clock import VirtualClock
from repro.sim.engine import EventLoop, ScheduledEvent

__all__ = ["VirtualClock", "EventLoop", "ScheduledEvent"]
