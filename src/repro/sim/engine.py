"""Heap-based discrete-event loop.

The loop is the innermost frame of every serving/cluster simulation — a
6 kHz flood over a 4-node fleet pushes hundreds of thousands of events
through it — so the per-event cost is kept to a heap pop, one float
store, and the callback: events are plain tuples (no dataclass
``order=True`` comparator walking ``__gt__`` through field lists), and
``run()`` binds its hot names locally.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, NamedTuple

from repro.sim.clock import VirtualClock

__all__ = ["ScheduledEvent", "EventLoop", "TraceCursor"]


class ScheduledEvent(NamedTuple):
    """A timestamped callback; ties break by insertion order (FIFO).

    A tuple subclass on purpose: heap siftup compares events as plain
    tuples, and ``seq`` is unique per loop, so ordering is decided by
    ``(time, seq)`` and the callable/label are never compared.
    """

    time: float
    seq: int
    action: Callable[["EventLoop"], Any]
    label: str = ""


class EventLoop:
    """Run callbacks in virtual-time order.

    Callbacks receive the loop and may schedule further events (at or
    after the current time).  ``run(until=...)`` drains the heap.
    """

    def __init__(self, start: float = 0.0):
        self.clock = VirtualClock(start)
        self._heap: list[ScheduledEvent] = []
        self._seq = 0
        self._processed = 0
        self._cancelled = 0
        # Utilization counters (see utilization()): how many run() calls
        # the loop saw, how many of them found nothing to fire, and how
        # many bounded runs fired nothing while live work waited beyond
        # the horizon — the signature of a shard stalled on its
        # conservative window rather than out of work.
        self._runs = 0
        self._idle_runs = 0
        self._window_stalls = 0
        # Lazy deletion: cancelled events keep their heap slot (an O(n)
        # heap repair per cancel would dominate timeout-heavy serving) and
        # are skipped — without advancing the clock — when popped.  The set
        # holds the seqs of live (scheduled, not yet fired) events, which
        # is also what makes cancel-after-fire detectable in O(1).
        self._live: set[int] = set()
        self._dead: set[int] = set()

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self.clock.now

    @property
    def pending(self) -> int:
        """Events still queued (cancelled events no longer count)."""
        return len(self._live)

    @property
    def cancelled(self) -> int:
        """Events cancelled since construction."""
        return self._cancelled

    @property
    def processed(self) -> int:
        """Events processed since construction."""
        return self._processed

    @property
    def idle_runs(self) -> int:
        """run() calls that found nothing to fire."""
        return self._idle_runs

    @property
    def window_stalls(self) -> int:
        """Bounded runs that fired nothing while work waited past the horizon."""
        return self._window_stalls

    def utilization(self) -> dict:
        """Counters for observing how busy this loop actually is.

        A sharded replay drives many loops in lockstep windows; comparing
        their ``events_fired`` shows load imbalance, and ``window_stalls``
        counts windows a loop spent entirely blocked on the conservative
        horizon (all of its pending work lay beyond it) — pure
        synchronization overhead, the cost of the lookahead being smaller
        than that shard's natural event spacing.
        """
        return {
            "events_fired": self._processed,
            "runs": self._runs,
            "idle_runs": self._idle_runs,
            "window_stalls": self._window_stalls,
            "cancelled": self._cancelled,
            "pending": len(self._live),
        }

    def schedule(
        self, time: float, action: Callable[["EventLoop"], Any], label: str = ""
    ) -> ScheduledEvent:
        """Enqueue ``action`` to fire at virtual ``time`` (>= now)."""
        if time < self.clock.now:
            raise ValueError(
                f"cannot schedule into the past: {time} < now={self.clock.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        ev = ScheduledEvent(time=float(time), seq=seq, action=action, label=label)
        heapq.heappush(self._heap, ev)
        self._live.add(seq)
        return ev

    def reserve_sequences(self, n: int) -> int:
        """Claim ``n`` consecutive sequence numbers; returns the first.

        Batched dispatch (:class:`TraceCursor`) fires one event per
        *run* of same-timestamp arrivals instead of one per arrival, but
        tie-breaking against independently scheduled events (fault
        campaigns, coalescer timers, heartbeats) must match the
        per-event path exactly.  Reserving the whole block at ingestion
        time — exactly when :meth:`schedule_bulk` would have numbered
        each arrival — and firing each run under its first arrival's
        reserved seq makes the (time, seq) order of every event in the
        simulation identical to the unbatched schedule.
        """
        if n < 0:
            raise ValueError(f"cannot reserve a negative block, got {n}")
        start = self._seq
        self._seq = start + n
        return start

    def schedule_reserved(
        self,
        time: float,
        seq: int,
        action: Callable[["EventLoop"], Any],
        label: str = "",
    ) -> ScheduledEvent:
        """Enqueue ``action`` under a seq claimed via :meth:`reserve_sequences`."""
        if time < self.clock.now:
            raise ValueError(
                f"cannot schedule into the past: {time} < now={self.clock.now}"
            )
        if not 0 <= seq < self._seq:
            raise ValueError(f"seq {seq} was never reserved (next is {self._seq})")
        if seq in self._live or seq in self._dead:
            raise ValueError(f"seq {seq} is already scheduled")
        ev = ScheduledEvent(time=float(time), seq=seq, action=action, label=label)
        heapq.heappush(self._heap, ev)
        self._live.add(seq)
        return ev

    def cancel(self, event: ScheduledEvent) -> bool:
        """Cancel a scheduled event; returns whether it was still pending.

        Lazy: the heap slot stays until its pop, where the event is
        discarded without firing (and without advancing the clock).
        Cancelling an event that already fired — or was already cancelled
        — is a no-op returning False, so callers may cancel timeouts and
        heartbeats unconditionally on completion.  Safe to call from
        inside a callback, including against events due at the current
        instant that have not yet popped.
        """
        seq = event.seq
        if seq not in self._live:
            return False
        self._live.discard(seq)
        self._dead.add(seq)
        self._cancelled += 1
        return True

    def schedule_bulk(
        self,
        items: "list[tuple[float, Callable[[EventLoop], Any]]]",
        label: str = "",
    ) -> int:
        """Enqueue many (time, action) pairs in one pass.

        Trace ingestion schedules tens of thousands of arrivals before the
        first event fires; pushing them one by one costs O(n log n) sifts.
        This fast path validates once, extends the heap, and restores the
        invariant with a single O(n) ``heapify`` — or skips even that when
        the heap is empty and the items arrive pre-sorted (a sorted array
        *is* a valid min-heap).  Sequence numbers are handed out in item
        order, so the pop order — and therefore every simulated-time
        result — is identical to n individual :meth:`schedule` calls.

        Returns the number of events enqueued.
        """
        now = self.clock.now
        seq = self._seq
        events = []
        prev = -float("inf")
        sorted_items = True
        for item in items:
            time = float(item[0])
            if time < now:
                raise ValueError(
                    f"cannot schedule into the past: {time} < now={now}"
                )
            if time < prev:
                sorted_items = False
            prev = time
            events.append(
                ScheduledEvent(time=time, seq=seq, action=item[1], label=label)
            )
            seq += 1
        self._seq = seq
        if not events:
            return 0
        # Extend in place (never rebind: run() holds a local alias).  With
        # an empty heap and sorted items the result is already a valid
        # min-heap; otherwise one O(n) heapify restores the invariant.
        needs_heapify = bool(self._heap) or not sorted_items
        self._heap.extend(events)
        self._live.update(ev.seq for ev in events)
        if needs_heapify:
            heapq.heapify(self._heap)
        return len(events)

    def schedule_after(
        self, delay: float, action: Callable[["EventLoop"], Any], label: str = ""
    ) -> ScheduledEvent:
        """Enqueue an action at now + delay."""
        if delay < 0.0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self.schedule(self.clock.now + delay, action, label)

    def schedule_repeating(
        self,
        interval: float,
        action: Callable[["EventLoop"], Any],
        until: float,
        label: str = "",
    ) -> ScheduledEvent | None:
        """Fire ``action`` every ``interval`` seconds through ``until``.

        The first firing lands at ``now + interval``; each firing reschedules
        the next one while it would still land at or before ``until``, so the
        loop drains once the horizon passes (periodic actors — autoscalers,
        health checks — never keep a simulation alive forever).  Returns the
        first scheduled event, or None when the horizon is already too close.
        """
        if interval <= 0.0:
            raise ValueError(f"interval must be positive, got {interval}")
        if until < self.clock.now:
            raise ValueError(
                f"until must be >= now: {until} < now={self.clock.now}"
            )

        def _fire(loop: "EventLoop") -> None:
            action(loop)
            nxt = loop.now + interval
            if nxt <= until:
                loop.schedule(nxt, _fire, label=label)

        first = self.clock.now + interval
        if first > until:
            return None
        return self.schedule(first, _fire, label=label)

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Process events in order; returns the final virtual time.

        ``until`` stops before events later than the horizon (they stay
        queued); ``max_events`` bounds the number processed (runaway guard).
        """
        heap = self._heap
        clock = self.clock
        pop = heapq.heappop
        live = self._live
        dead = self._dead
        budget = float("inf") if max_events is None else max_events
        horizon = float("inf") if until is None else until
        processed_here = 0
        try:
            while heap and heap[0][0] <= horizon and processed_here < budget:
                time, seq, action, _label = pop(heap)
                if dead:
                    # Lazily drop cancelled events: no clock movement, no
                    # budget charge — as if they were never scheduled.
                    if seq in dead:
                        dead.discard(seq)
                        continue
                live.discard(seq)
                # Heap order plus schedule()'s no-past guard make the pop
                # sequence monotone, so the clock moves forward by direct
                # assignment (advance_to's check would re-prove that per
                # event).
                clock._now = time
                action(self)
                processed_here += 1
                # Same-timestamp run: every event at `time` is already
                # inside the horizon and needs no clock movement, so drain
                # the tie without re-testing the horizon or storing the
                # clock per event.  Pop order (and therefore every result)
                # is identical to the outer loop's.
                while heap and heap[0][0] == time and processed_here < budget:
                    _t, seq, action, _label = pop(heap)
                    if dead and seq in dead:
                        dead.discard(seq)
                        continue
                    live.discard(seq)
                    action(self)
                    processed_here += 1
        finally:
            self._processed += processed_here
            self._runs += 1
            if processed_here == 0:
                self._idle_runs += 1
                if until is not None and live:
                    self._window_stalls += 1
        if until is not None and clock.now < until and (
            not heap or heap[0][0] > until
        ):
            clock.advance_to(until)
        return clock.now


class TraceCursor:
    """Walk a sorted timestamp array, firing one callback per *run*.

    Bulk-ingesting a million-request trace puts a million entries on the
    heap: every subsequent push/pop sifts through ~log2(1e6) ≈ 20 levels
    for the whole replay.  A cursor keeps the trace *off* the heap — one
    live event at a time — and hands each run of equal timestamps
    ``[i, j)`` to ``on_run(i, j)`` in a single call, which is what lets
    the serving layers batch admission probes and routing decisions
    across simultaneous arrivals.

    Equivalence with per-event scheduling is exact: the constructor
    reserves one sequence number per timestamp (the same block
    :meth:`EventLoop.schedule_bulk` would have consumed at the same
    moment) and each run fires under its first member's reserved seq, so
    every tie against independently scheduled events — injector
    campaigns armed before ingestion, timers armed mid-replay — resolves
    exactly as it would have for the first per-event arrival of that run.

    ``times`` must be non-decreasing and entirely at or after the loop's
    current time (a trace that already passed :class:`RequestTrace`
    validation is; the first schedule re-checks against ``now``).
    """

    __slots__ = ("_loop", "_times", "_on_run", "_label", "_block", "_i", "_n")

    def __init__(
        self,
        loop: EventLoop,
        times,
        on_run: Callable[[int, int], Any],
        label: str = "run",
    ):
        self._loop = loop
        self._times = times
        self._on_run = on_run
        self._label = label
        self._n = len(times)
        self._i = 0
        self._block = loop.reserve_sequences(self._n)

    @property
    def exhausted(self) -> bool:
        return self._i >= self._n

    def start(self) -> None:
        """Arm the cursor (no-op for an empty trace)."""
        if self._n:
            self._loop.schedule_reserved(
                self._times[0], self._block, self._fire, label=self._label
            )

    def _fire(self, loop: EventLoop) -> None:
        times = self._times
        i = self._i
        t = times[i]
        j = i + 1
        n = self._n
        while j < n and times[j] == t:
            j += 1
        self._i = j
        if j < n:
            loop.schedule_reserved(
                times[j], self._block + j, self._fire, label=self._label
            )
        self._on_run(i, j)
