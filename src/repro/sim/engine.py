"""Heap-based discrete-event loop."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.sim.clock import VirtualClock

__all__ = ["ScheduledEvent", "EventLoop"]


@dataclass(order=True)
class ScheduledEvent:
    """A timestamped callback; ties break by insertion order (FIFO)."""

    time: float
    seq: int
    action: Callable[["EventLoop"], Any] = field(compare=False)
    label: str = field(default="", compare=False)


class EventLoop:
    """Run callbacks in virtual-time order.

    Callbacks receive the loop and may schedule further events (at or
    after the current time).  ``run(until=...)`` drains the heap.
    """

    def __init__(self, start: float = 0.0):
        self.clock = VirtualClock(start)
        self._heap: list[ScheduledEvent] = []
        self._seq = itertools.count()
        self._processed = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self.clock.now

    @property
    def pending(self) -> int:
        """Events still queued."""
        return len(self._heap)

    @property
    def processed(self) -> int:
        """Events processed since construction."""
        return self._processed

    def schedule(
        self, time: float, action: Callable[["EventLoop"], Any], label: str = ""
    ) -> ScheduledEvent:
        """Enqueue ``action`` to fire at virtual ``time`` (>= now)."""
        if time < self.clock.now:
            raise ValueError(
                f"cannot schedule into the past: {time} < now={self.clock.now}"
            )
        ev = ScheduledEvent(time=float(time), seq=next(self._seq), action=action, label=label)
        heapq.heappush(self._heap, ev)
        return ev

    def schedule_after(
        self, delay: float, action: Callable[["EventLoop"], Any], label: str = ""
    ) -> ScheduledEvent:
        """Enqueue an action at now + delay."""
        if delay < 0.0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self.schedule(self.clock.now + delay, action, label)

    def schedule_repeating(
        self,
        interval: float,
        action: Callable[["EventLoop"], Any],
        until: float,
        label: str = "",
    ) -> ScheduledEvent | None:
        """Fire ``action`` every ``interval`` seconds through ``until``.

        The first firing lands at ``now + interval``; each firing reschedules
        the next one while it would still land at or before ``until``, so the
        loop drains once the horizon passes (periodic actors — autoscalers,
        health checks — never keep a simulation alive forever).  Returns the
        first scheduled event, or None when the horizon is already too close.
        """
        if interval <= 0.0:
            raise ValueError(f"interval must be positive, got {interval}")
        if until < self.clock.now:
            raise ValueError(
                f"until must be >= now: {until} < now={self.clock.now}"
            )

        def _fire(loop: "EventLoop") -> None:
            action(loop)
            nxt = loop.now + interval
            if nxt <= until:
                loop.schedule(nxt, _fire, label=label)

        first = self.clock.now + interval
        if first > until:
            return None
        return self.schedule(first, _fire, label=label)

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Process events in order; returns the final virtual time.

        ``until`` stops before events later than the horizon (they stay
        queued); ``max_events`` bounds the number processed (runaway guard).
        """
        processed_here = 0
        while self._heap:
            if until is not None and self._heap[0].time > until:
                break
            if max_events is not None and processed_here >= max_events:
                break
            ev = heapq.heappop(self._heap)
            self.clock.advance_to(ev.time)
            ev.action(self)
            self._processed += 1
            processed_here += 1
        if until is not None and self.clock.now < until and (
            not self._heap or self._heap[0].time > until
        ):
            self.clock.advance_to(until)
        return self.clock.now
