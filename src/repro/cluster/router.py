"""The fleet router: one ingress dispatching traces across many nodes.

The router is the cluster-level twin of the serving frontend's façade:
``submit_request`` schedules the routing decision *at the request's
arrival instant* on the shared event loop (so the balancing policy sees
node load as it is then, not as it was at trace submission), binds the
resulting per-node :class:`~repro.serving.frontend.ServingResponse` into a
:class:`ClusterResponse`, and keeps the request-id -> response map that
makes drains exactly-once:

* :meth:`drain_node` pops a node's queued requests (in-flight work
  finishes where it is) and immediately re-routes each through the
  balancing policy to a remaining active node;
* a re-routed request keeps its original arrival time and deadline, so
  its end-to-end latency honestly includes the time spent on the drained
  node;
* if no active node remains, the request resolves as shed
  (``no_active_node``) — resolved, never lost, never duplicated.

Built with a :class:`~repro.faults.config.ResilienceConfig`, the router
also arms the defensive stack (see ``docs/resilience.md``): per-node
circuit breakers the balancer respects, heartbeat crash detection with
exactly-once re-adoption of orphaned work, per-request rescue timeouts,
and deadline-respecting retries with seeded backoff jitter.  Without one
(the default) none of that machinery exists — no breakers, no extra
events, no random draws — so fault-free results stay digit-identical.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from functools import partial

import numpy as np

from repro.errors import SchedulerError
from repro.cluster.balancers import LoadBalancer, ShardSummary, make_balancer
from repro.cluster.node import ClusterNode, NodeState
from repro.faults.breaker import BreakerState, CircuitBreaker
from repro.faults.config import ResilienceConfig
from repro.rng import ensure_rng
from repro.serving.frontend import ServingFrontend, ServingResponse
from repro.serving.queues import QueueEntry
from repro.sim.engine import TraceCursor
from repro.telemetry.fleet import FleetTelemetry
from repro.workloads.requests import InferenceRequest, RequestTrace

__all__ = ["ClusterEvent", "ClusterResponse", "ClusterResult", "ClusterRouter"]


@dataclass(frozen=True)
class ClusterEvent:
    """One fleet-level occurrence, for the event log."""

    t_s: float
    kind: str        # 'scale_up' | 'drain_start' | 'drain_complete' |
                     # 'reroute' | 'route_failed' | 'node_down' | 'node_up' |
                     # 'breaker' | 'redeliver' | 'timeout' | 'shed'
    node: str
    detail: str = ""


class ClusterResponse:
    """Future-like handle for one request routed through the fleet.

    Proxies the node-level :class:`ServingResponse` it is currently bound
    to; a drain re-binds it to the adopting node's response.  Exactly one
    binding is live at a time — the drained frontend forgets its copy —
    so served/shed outcomes are counted once no matter how many hops the
    request took.

    ``on_done`` fires exactly once when the request finally resolves —
    whichever node serves (or sheds) it, across any number of drains,
    crashes and retries — so chained work (cascade escalations) can react
    at the resolution instant on the shared virtual clock.
    """

    __slots__ = (
        "request", "node_name", "inner", "n_routes", "_shed_reason", "on_done",
    )

    def __init__(self, request: InferenceRequest):
        self.request = request
        self.node_name: "str | None" = None
        self.inner: "ServingResponse | None" = None
        self.n_routes = 0
        self._shed_reason: "str | None" = None   # router-level shed override
        self.on_done: "Callable[[ClusterResponse], None] | None" = None

    def bind(self, node_name: str, inner: ServingResponse) -> None:
        """Point this handle at the (new) node-level response."""
        self.node_name = node_name
        self.inner = inner
        self.n_routes += 1
        # An adoption can resolve synchronously (admission sheds inside
        # adopt()) before this hook is attached; notify immediately then.
        inner.on_done = self._on_inner_done
        if inner.done:
            inner.on_done = None
            self._fire_done()

    def _on_inner_done(self, inner: ServingResponse) -> None:
        if inner is self.inner:   # a stale binding's resolution is not ours
            self._fire_done()

    def _fire_done(self) -> None:
        hook = self.on_done
        if hook is not None:
            self.on_done = None
            hook(self)

    def mark_shed(self, reason: str) -> None:
        """Resolve as shed at the router (e.g. no active node left)."""
        self._shed_reason = reason
        self._fire_done()

    # -- resolved state ----------------------------------------------------

    @property
    def status(self) -> str:
        if self._shed_reason is not None:
            return "shed"
        return self.inner.status if self.inner is not None else "pending"

    @property
    def done(self) -> bool:
        return self.status != "pending"

    @property
    def served(self) -> bool:
        return self.status == "ok"

    @property
    def rerouted(self) -> bool:
        """Whether a drain moved this request between nodes."""
        return self.n_routes > 1

    @property
    def shed_reason(self) -> "str | None":
        if self._shed_reason is not None:
            return self._shed_reason
        return self.inner.shed_reason if self.inner is not None else None

    @property
    def latency_s(self) -> float:
        """Arrival-to-completion, across every hop (served only)."""
        if self.inner is None or not self.served:
            raise SchedulerError(f"request is {self.status}, has no latency")
        return self.inner.latency_s

    @property
    def deadline_met(self) -> "bool | None":
        return self.inner.deadline_met if self.inner is not None else None

    @property
    def device(self) -> "str | None":
        return self.inner.device if self.inner is not None else None

    def outcome_tuple(self) -> tuple:
        """The resolved outcome, serialized for digesting and IPC.

        ``(request_id, status, node, device, end_s, shed_reason)`` — the
        exact fields the determinism digests hash (see
        :mod:`repro.shard.digest`), so a sharded worker can ship outcomes
        as columns and the merged digest still compares bit-for-bit
        against a single-process replay.
        """
        inner = self.inner
        return (
            self.request.request_id,
            self.status,
            self.node_name,
            inner.device if inner is not None else None,
            inner.end_s if inner is not None else None,
            self.shed_reason,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClusterResponse(id={self.request.request_id}, "
            f"status={self.status!r}, node={self.node_name!r}, "
            f"routes={self.n_routes})"
        )


@dataclass
class ClusterResult:
    """Aggregate outcome of serving a trace through the fleet."""

    responses: "list[ClusterResponse]" = field(default_factory=list)
    telemetry: FleetTelemetry = field(default_factory=FleetTelemetry)
    events: "list[ClusterEvent]" = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.responses)

    @property
    def served(self) -> "list[ClusterResponse]":
        return [r for r in self.responses if r.served]

    @property
    def shed(self) -> "list[ClusterResponse]":
        return [r for r in self.responses if r.status == "shed"]

    @property
    def rerouted(self) -> "list[ClusterResponse]":
        return [r for r in self.responses if r.rerouted]

    @property
    def shed_rate(self) -> float:
        return len(self.shed) / len(self.responses) if self.responses else 0.0

    @property
    def n_violations(self) -> int:
        return sum(1 for r in self.served if r.deadline_met is False)

    def latency_percentile(self, q: float) -> float:
        """q-th percentile latency over served requests, in seconds."""
        served = self.served
        if not served:
            raise SchedulerError("no served requests in result")
        return float(np.percentile([r.latency_s for r in served], q))

    def device_shares(self) -> "dict[str, float]":
        """Fraction of served requests per device class, fleet-wide."""
        served = self.served
        if not served:
            return {}
        counts: dict[str, int] = {}
        for r in served:
            counts[r.device] = counts.get(r.device, 0) + 1
        return {d: c / len(served) for d, c in sorted(counts.items())}

    def node_shares(self) -> "dict[str, float]":
        """Fraction of served requests per node."""
        served = self.served
        if not served:
            return {}
        counts: dict[str, int] = {}
        for r in served:
            counts[r.node_name] = counts.get(r.node_name, 0) + 1
        return {n: c / len(served) for n, c in sorted(counts.items())}


class ClusterRouter:
    """Routes a request stream across a fleet of serving nodes.

    Parameters
    ----------
    nodes:
        The fleet (see :func:`repro.cluster.node.make_fleet`).  All nodes
        must share one event loop and serve the same model set.
    balancer:
        Balancing policy: a name (see
        :data:`repro.cluster.balancers.BALANCERS`) or an instance.
    rng:
        Seed for randomized policies when ``balancer`` is a name.
    resilience:
        Opt into the fault-tolerance stack (breakers, heartbeats,
        timeouts, retries).  None — the default — arms nothing: the
        router behaves exactly as before the resilience layer existed.
    """

    def __init__(
        self,
        nodes: "list[ClusterNode]",
        balancer: "LoadBalancer | str" = "round-robin",
        rng: "int | np.random.Generator | None" = None,
        resilience: "ResilienceConfig | None" = None,
    ):
        if not nodes:
            raise SchedulerError("a cluster router needs at least one node")
        names = [n.name for n in nodes]
        if len(set(names)) != len(names):
            raise SchedulerError(f"duplicate node names: {names}")
        loops = {id(n.frontend.loop) for n in nodes}
        if len(loops) != 1:
            raise SchedulerError(
                "all nodes must share one event loop (build them via "
                "make_fleet, or pass the same loop to every frontend)"
            )
        specs = nodes[0].frontend.specs
        for node in nodes[1:]:
            if set(node.frontend.specs) != set(specs):
                raise SchedulerError(
                    f"node {node.name!r} serves {sorted(node.frontend.specs)}, "
                    f"expected {sorted(specs)}"
                )

        self.nodes = list(nodes)
        self.loop = nodes[0].frontend.loop
        self.specs = dict(specs)
        self.balancer = (
            balancer
            if isinstance(balancer, LoadBalancer)
            else make_balancer(balancer, rng=rng)
        )
        self.telemetry = FleetTelemetry()
        for node in self.nodes:
            self.telemetry.attach(node.name, node.frontend.telemetry)

        self.events: "list[ClusterEvent]" = []
        self.n_rerouted = 0
        self._responses: "list[ClusterResponse]" = []
        self._by_id: "dict[int, ClusterResponse]" = {}
        self._seq = 0

        # -- resilience (armed only when a config is given) -----------------
        self.resilience = resilience
        self._breakers: "dict[str, CircuitBreaker]" = {}
        self._crashes_handled: "dict[str, int]" = {}
        self._retry_rng: "np.random.Generator | None" = None
        if resilience is not None:
            self._retry_rng = ensure_rng(resilience.seed)
            for node in self.nodes:
                self._breakers[node.name] = CircuitBreaker(
                    failure_threshold=resilience.failure_threshold,
                    cooldown_s=resilience.breaker_cooldown_s,
                    max_cooldown_s=resilience.breaker_max_cooldown_s,
                    on_transition=partial(self._on_breaker_transition, node.name),
                )
                self._crashes_handled[node.name] = node.crash_count
                node.frontend.on_request_failed = partial(
                    self._on_node_failure, node
                )

    # -- fleet views -------------------------------------------------------

    @property
    def active_nodes(self) -> "list[ClusterNode]":
        return [n for n in self.nodes if n.state is NodeState.ACTIVE]

    @property
    def standby_nodes(self) -> "list[ClusterNode]":
        return [n for n in self.nodes if n.state is NodeState.STANDBY]

    @property
    def draining_nodes(self) -> "list[ClusterNode]":
        return [n for n in self.nodes if n.state is NodeState.DRAINING]

    @property
    def down_nodes(self) -> "list[ClusterNode]":
        return [n for n in self.nodes if n.state is NodeState.DOWN]

    def routable_nodes(self) -> "list[ClusterNode]":
        """Active nodes the balancer may target right now.

        Without resilience this is exactly :attr:`active_nodes`; with it,
        nodes whose breaker is not CLOSED are skipped (HALF_OPEN takes
        probes, not traffic).
        """
        active = self.active_nodes
        if self.resilience is None:
            return active
        return [n for n in active if self._breakers[n.name].allows_traffic]

    def node(self, name: str) -> ClusterNode:
        for n in self.nodes:
            if n.name == name:
                return n
        known = ", ".join(n.name for n in self.nodes)
        raise SchedulerError(f"no node {name!r} in fleet (has: {known})")

    def _log(self, kind: str, node: str, detail: str = "") -> None:
        self.events.append(ClusterEvent(self.loop.now, kind, node, detail))

    # -- submission --------------------------------------------------------

    def submit(
        self,
        model: str,
        batch: int,
        deadline_s: "float | None" = None,
        arrival_s: "float | None" = None,
    ) -> ClusterResponse:
        """Submit one request by value; router assigns the request id."""
        if model not in self.specs:
            known = ", ".join(sorted(self.specs)) or "<none>"
            raise SchedulerError(f"model {model!r} is not served; deployed: {known}")
        arrival = self.loop.now if arrival_s is None else float(arrival_s)
        request = InferenceRequest(
            request_id=self._seq,
            arrival_s=arrival,
            model=model,
            batch=int(batch),
            deadline_s=None if deadline_s is None else arrival + deadline_s,
        )
        return self.submit_request(request)

    def submit_request(
        self, request: InferenceRequest, x: "np.ndarray | None" = None
    ) -> ClusterResponse:
        """Enqueue a routing decision at the request's arrival instant.

        The node choice happens *when the request arrives* on the shared
        clock — the policy reads fleet load at that moment.  Request ids
        must be unique per router (they key the exactly-once ledger).
        """
        response = self._register(request)
        self.loop.schedule(
            request.arrival_s,
            partial(self._route, response, x),
            label="route",
        )
        return response

    def _register(self, request: InferenceRequest) -> ClusterResponse:
        """Validate and enter a request into the exactly-once ledger."""
        if request.model not in self.specs:
            known = ", ".join(sorted(self.specs)) or "<none>"
            raise SchedulerError(
                f"model {request.model!r} is not served; deployed: {known}"
            )
        if request.request_id in self._by_id:
            raise SchedulerError(
                f"duplicate request_id {request.request_id} "
                "(the router's exactly-once ledger is keyed by id)"
            )
        if request.arrival_s < self.loop.now:
            raise SchedulerError(
                f"cannot submit into the past: arrival {request.arrival_s} "
                f"< now={self.loop.now}"
            )
        response = ClusterResponse(request)
        self._by_id[request.request_id] = response
        self._responses.append(response)
        self._seq = max(self._seq, request.request_id + 1)
        return response

    def _route(
        self, response: ClusterResponse, x: "np.ndarray | None", _loop=None
    ) -> None:
        active = self.routable_nodes()
        if not active:
            response.mark_shed("no_active_node")
            self._log("route_failed", "-", f"request {response.request.request_id}")
            return
        spec = self.specs[response.request.model]
        node = self.balancer.choose(active, response.request, spec, self.loop.now)
        inner = node.frontend.submit_request(response.request, x)
        response.bind(node.name, inner)
        self._arm_timeout(response)

    # -- membership (used by the autoscaler, or directly) ------------------

    def activate_node(self, name: str) -> ClusterNode:
        """Bring a standby node into the serving set."""
        node = self.node(name)
        node.activate()
        self.balancer.invalidate()
        self._log("scale_up", node.name)
        return node

    def drain_node(self, name: str) -> int:
        """Gracefully remove a node: re-route its queue, let flights land.

        Returns the number of requests re-routed.  Each drained request is
        re-routed through the balancing policy at the drain instant; with
        no active node left it resolves as shed — exactly-once either way.
        """
        node = self.node(name)
        entries = node.start_drain()
        self.balancer.invalidate()
        self._log("drain_start", node.name, f"{len(entries)} re-routed")
        for entry in entries:
            self._reroute(entry)
        if node.finish_drain_if_idle():
            self._log("drain_complete", node.name)
        return len(entries)

    def _reroute(self, entry: QueueEntry) -> None:
        response = self._by_id.get(entry.request.request_id)
        if response is None:
            raise SchedulerError(
                f"drained request {entry.request.request_id} was never "
                "routed through this router"
            )
        active = self.routable_nodes()
        if not active:
            response.mark_shed("no_active_node")
            self._log(
                "route_failed", "-",
                f"request {entry.request.request_id} (drain, no target)",
            )
            return
        spec = self.specs[entry.request.model]
        node = self.balancer.choose(active, entry.request, spec, self.loop.now)
        inner = node.frontend.adopt(entry)
        response.bind(node.name, inner)
        self._arm_timeout(response)
        self.n_rerouted += 1
        self._log(
            "reroute", node.name, f"request {entry.request.request_id}"
        )

    def sweep_drains(self) -> int:
        """Flip any fully-landed draining nodes to standby."""
        done = 0
        for node in self.draining_nodes:
            if node.finish_drain_if_idle():
                self._log("drain_complete", node.name)
                done += 1
        return done

    # -- resilience: timeouts and retries ----------------------------------

    def _arm_timeout(self, response: ClusterResponse) -> None:
        """Watch one freshly-bound request for a rescue timeout.

        The firing is stamped with the binding generation (``n_routes``),
        so a timeout armed for an earlier node is a dead letter once the
        request moves on.  No-op without a resilience config.
        """
        cfg = self.resilience
        if cfg is None or cfg.timeout_s is None:
            return
        self.loop.schedule(
            self.loop.now + cfg.timeout_s,
            partial(self._on_timeout, response, response.n_routes),
            label="timeout",
        )

    def _on_timeout(
        self, response: ClusterResponse, routes: int, _loop=None
    ) -> None:
        if response.done or response.n_routes != routes:
            return  # resolved, or rebound since arming — stale firing
        node = self.node(response.node_name)
        entry = node.frontend.cancel_queued(response.request.request_id)
        if entry is None:
            # In flight: it will complete (cancelling a launched batch
            # would risk running twice), so just keep watching.
            self._arm_timeout(response)
            return
        self.telemetry.resilience.n_timeouts += 1
        self._log("timeout", node.name, f"request {response.request.request_id}")
        self._retry_or_shed(entry, response, "timeout")

    def _retry_or_shed(
        self, entry: QueueEntry, response: ClusterResponse, reason: str
    ) -> None:
        """Decide a rescued request's fate: deadline first, then budget.

        The caller must own ``entry`` exclusively (physically removed from
        wherever it lived) — this either schedules a backoff redelivery or
        resolves the response as shed, exactly one of the two.
        """
        cfg = self.resilience
        now = self.loop.now
        rid = response.request.request_id
        deadline = response.request.deadline_s
        if deadline is not None and now >= deadline:
            response.mark_shed("deadline_exceeded")
            self.telemetry.resilience.n_shed_deadline += 1
            self._log("shed", "-", f"request {rid} past deadline ({reason})")
            return
        if not cfg.retry.allows_retry(response.n_routes):
            response.mark_shed("retry_budget_exhausted")
            self.telemetry.resilience.n_shed_retry_budget += 1
            self._log("shed", "-", f"request {rid} out of attempts ({reason})")
            return
        delay = cfg.retry.backoff_s(response.n_routes, self._retry_rng)
        self.telemetry.resilience.n_retries += 1
        self.loop.schedule(
            now + delay, partial(self._redeliver, entry, response), label="retry"
        )

    def _redeliver(
        self, entry: QueueEntry, response: ClusterResponse, _loop=None
    ) -> None:
        """Hand a router-held entry to a routable node (retry / re-adopt)."""
        if response.done:
            return
        now = self.loop.now
        rid = entry.request.request_id
        deadline = response.request.deadline_s
        if deadline is not None and now >= deadline:
            response.mark_shed("deadline_exceeded")
            self.telemetry.resilience.n_shed_deadline += 1
            self._log("shed", "-", f"request {rid} past deadline (backoff)")
            return
        active = self.routable_nodes()
        if not active:
            response.mark_shed("no_active_node")
            self._log("route_failed", "-", f"request {rid} (retry, no target)")
            return
        spec = self.specs[entry.request.model]
        node = self.balancer.choose(active, entry.request, spec, now)
        inner = node.frontend.adopt(entry)
        response.bind(node.name, inner)
        self.telemetry.resilience.n_redelivered += 1
        self._log("redeliver", node.name, f"request {rid}")
        self._arm_timeout(response)

    def _on_node_failure(
        self,
        node: ClusterNode,
        entry: QueueEntry,
        inner: ServingResponse,
        reason: str,
    ) -> bool:
        """Frontend hook: one request's launch failed transiently.

        Returns True to take ownership (the frontend then leaves the
        response pending for the router to retry or shed); False hands it
        back for a local node-level shed — e.g. a request that was never
        routed through this router.
        """
        response = self._by_id.get(entry.request.request_id)
        if response is None or response.inner is not inner:
            return False
        self.telemetry.resilience.n_failures += 1
        self._breakers[node.name].record_failure(self.loop.now)
        self._retry_or_shed(entry, response, "inference_error")
        return True

    # -- resilience: health checks -----------------------------------------

    def health_check(self) -> None:
        """One heartbeat sweep over the fleet (no-op without resilience).

        Detects crashes (the monotone ``crash_count`` moved) — tripping
        the breaker, marking the node DOWN and re-adopting its orphaned
        work exactly once — then walks every breaker: cooled-down OPEN
        breakers offer a HALF_OPEN probe, and the probe's verdict either
        re-closes the breaker (reviving a DOWN node into the serving set)
        or re-opens it with a doubled cooldown.
        """
        if self.resilience is None:
            return
        now = self.loop.now
        for node in self.nodes:
            if node.crash_count > self._crashes_handled[node.name]:
                self._handle_crash(node)
        for node in self.nodes:
            breaker = self._breakers[node.name]
            breaker.maybe_half_open(now)
            if breaker.state is not BreakerState.HALF_OPEN:
                continue
            if node.crashed:
                breaker.record_failure(now)   # probe failed: back off harder
                continue
            breaker.record_success(now)
            if node.state is NodeState.DOWN:
                restored = node.revive()
                self.telemetry.mark_node_up(node.name, now)
                if restored is NodeState.ACTIVE:
                    self.balancer.invalidate()
                self._log("node_up", node.name, f"restored {restored.value}")

    def _handle_crash(self, node: ClusterNode) -> None:
        now = self.loop.now
        self._crashes_handled[node.name] = node.crash_count
        self.telemetry.resilience.n_crashes_detected += 1
        self._breakers[node.name].trip(now)
        if node.state is not NodeState.DOWN:
            self.telemetry.mark_node_down(node.name, now)
        node.mark_down()
        self.balancer.invalidate()
        lost = node.frontend.collect_lost()
        self._log("node_down", node.name, f"{len(lost)} orphaned")
        # Orphans are redelivered immediately — their time already burned
        # on the dead node — subject to the same deadline-first rule.
        for entry in lost:
            response = self._by_id.get(entry.request.request_id)
            if response is None or response.done:
                continue
            self._redeliver(entry, response)

    def _on_breaker_transition(
        self, name: str, now: float, old: BreakerState, new: BreakerState
    ) -> None:
        counters = self.telemetry.resilience
        if new is BreakerState.OPEN:
            counters.n_breaker_opens += 1
        elif new is BreakerState.HALF_OPEN:
            counters.n_breaker_half_opens += 1
        else:
            counters.n_breaker_closes += 1
        self._log("breaker", name, f"{old.value} -> {new.value}")

    def schedule_health(self, until: float):
        """Heartbeat every ``heartbeat_every_s`` through ``until``."""
        if self.resilience is None:
            raise SchedulerError("router was built without a ResilienceConfig")
        return self.loop.schedule_repeating(
            self.resilience.heartbeat_every_s,
            lambda _loop: self.health_check(),
            until=until,
            label="heartbeat",
        )

    def goodput(self) -> float:
        """Fraction of resolved requests that were served within their SLO.

        Counted over the router's own ledger, so router-level sheds
        (deadline passed, retry budget exhausted, no active node) weigh
        against it alongside node-level sheds and late completions.
        1.0 before anything resolves.
        """
        resolved = [r for r in self._responses if r.done]
        if not resolved:
            return 1.0
        good = sum(
            1 for r in resolved if r.served and r.deadline_met is not False
        )
        return good / len(resolved)

    # -- driving -----------------------------------------------------------

    def run(self, until: "float | None" = None) -> float:
        """Drive the shared loop; sweep finished drains afterwards."""
        end = self.loop.run(until=until)
        self.sweep_drains()
        return end

    def serve_trace(
        self, trace: RequestTrace, vectorized: bool = False
    ) -> ClusterResult:
        """Replay a whole trace through the fleet and drain the loop.

        Trace arrivals are ledgered first.  The default path injects one
        routing event per request through the event loop's bulk fast path
        — one heapify over the (typically pre-sorted) arrival array
        instead of one ``heappush`` per request.

        With ``vectorized=True`` the trace stays off the heap: a
        :class:`~repro.sim.engine.TraceCursor` fires once per run of
        equal timestamps, the run is routed in one pass (pure balancers —
        ``stateless_choice`` — probe each distinct (model, batch) cell
        once instead of once per request), and the routed entries are
        delivered to their frontends by a single follow-up event whose
        late sequence number lands exactly where the per-event arrivals
        would have.  Bit-identical to the default path; the equivalence
        tests replay mixed traces both ways, with faults and partitions
        armed, and compare results digit for digit.

        With a resilience config, heartbeats are scheduled automatically
        through ``heartbeat_tail_s`` past the last arrival, so crashes
        during (or just after) the trace are detected without the caller
        wiring a :class:`~repro.faults.health.HealthMonitor` by hand.
        """
        last_arrival = None
        if vectorized:
            responses = self.feed_requests(trace)
            if responses:
                last_arrival = responses[-1].request.arrival_s
        else:
            items = [
                (request.arrival_s, partial(self._route, self._register(request), None))
                for request in trace
            ]
            self.loop.schedule_bulk(items, label="route")
            if items:
                last_arrival = max(t for t, _ in items)
        if self.resilience is not None and last_arrival is not None:
            self.schedule_health(last_arrival + self.resilience.heartbeat_tail_s)
        self.run()
        return self.result()

    def feed_requests(self, requests) -> "list[ClusterResponse]":
        """Ledger a batch of time-ordered requests and arm their cursor.

        The vectorized ingestion step of :meth:`serve_trace`, exposed on
        its own so a shard worker can inject each conservative window's
        arrivals mid-simulation: requests are registered upfront (their
        sequence block is reserved at injection time, keeping tie-breaks
        identical to per-event scheduling) and a
        :class:`~repro.sim.engine.TraceCursor` routes each run of equal
        timestamps in one pass.  Arrivals must be non-decreasing and at
        or after the loop's current time; the caller drives the loop.
        """
        responses = [self._register(request) for request in requests]
        if responses:
            TraceCursor(
                self.loop,
                [r.request.arrival_s for r in responses],
                partial(self._route_run, responses),
                label="route",
            ).start()
        return responses

    def shard_summary(self, group: int = 0) -> ShardSummary:
        """This router's load digest for the sharded front tier.

        O(#nodes) counter reads — cheap enough to take at every window
        boundary of a sharded replay.
        """
        queued = outstanding = outstanding_samples = 0
        for node in self.nodes:
            stats = node.stats()
            queued += stats.queued
            outstanding += stats.outstanding
            outstanding_samples += stats.outstanding_samples
        return ShardSummary(
            group=group,
            virtual_time_s=self.loop.now,
            outstanding=outstanding,
            outstanding_samples=outstanding_samples,
            queued=queued,
            served=self.telemetry.n_served,
            shed=self.telemetry.n_shed,
        )

    def _route_run(self, responses: "list[ClusterResponse]", i: int, j: int) -> None:
        """Route one run of simultaneous arrivals, then deliver in batch.

        Phase 1 (this event) makes every routing decision for the run.
        Until the deliveries land, nothing a pure balancer reads can
        change — queues and in-flight counters only move at delivery or
        dispatch — so one ``choose`` per (model, batch) cell reproduces
        the per-request decisions exactly.  Phase 2 is a single event at
        the same timestamp delivering the entries in submission order;
        its sequence number is allocated here, after the run's timeout
        arms, exactly where the per-event path allocates its arrival
        events — so timers and injector events landing on this instant
        interleave identically on both paths.
        """
        now = self.loop.now
        active = self.routable_nodes()
        balancer = self.balancer
        memo: "dict[tuple[str, int], ClusterNode] | None" = (
            {} if balancer.stateless_choice else None
        )
        deliveries: "list[tuple[ServingFrontend, QueueEntry]]" = []
        for k in range(i, j):
            response = responses[k]
            if not active:
                response.mark_shed("no_active_node")
                self._log(
                    "route_failed", "-", f"request {response.request.request_id}"
                )
                continue
            request = response.request
            spec = self.specs[request.model]
            if memo is None:
                node = balancer.choose(active, request, spec, now)
            else:
                key = (request.model, request.batch)
                node = memo.get(key)
                if node is None:
                    node = balancer.choose(active, request, spec, now)
                    memo[key] = node
            frontend = node.frontend
            inner, entry = frontend.register_request(request)
            response.bind(node.name, inner)
            self._arm_timeout(response)
            deliveries.append((frontend, entry))
        if deliveries:
            self.loop.schedule(
                now, partial(self._deliver_run, deliveries), label="arrive"
            )

    def _deliver_run(
        self,
        deliveries: "list[tuple[ServingFrontend, QueueEntry]]",
        _loop=None,
    ) -> None:
        """Deliver one run's routed entries, sharing estimate memos.

        Every distinct frontend in the run gets its completion-estimate
        memo armed for the duration (cleared by the frontends themselves
        whenever a dispatch moves a command queue), so simultaneous
        arrivals of one (model, batch) cell cost one admission probe.
        """
        armed = []
        for frontend, _entry in deliveries:
            if frontend.begin_arrival_batch():
                armed.append(frontend)
        try:
            for frontend, entry in deliveries:
                frontend.deliver(entry)
        finally:
            for frontend in armed:
                frontend.end_arrival_batch()

    def result(self) -> ClusterResult:
        """The routed responses plus fleet telemetry and the event log."""
        return ClusterResult(
            responses=list(self._responses),
            telemetry=self.telemetry,
            events=list(self.events),
        )

    @property
    def n_pending(self) -> int:
        """Requests routed (or awaiting routing) but not yet resolved."""
        return sum(1 for r in self._responses if not r.done)

    def decision_cache_stats(self) -> dict:
        """Fleet-wide rollup of the nodes' decision-cache counters."""
        enabled = False
        hits = misses = entries = refit_clears = feedback_invalidations = 0
        drift_invalidations = 0
        for node in self.nodes:
            cache_stats = getattr(node.frontend.backlog, "cache_stats", None)
            if cache_stats is None:  # duck-typed backlog (tests, adapters)
                continue
            s = cache_stats()
            enabled = enabled or s["enabled"]
            hits += s["hits"]
            misses += s["misses"]
            entries += s["entries"]
            refit_clears += s["refit_clears"]
            feedback_invalidations += s["feedback_invalidations"]
            drift_invalidations += s.get("drift_invalidations", 0)
        total = hits + misses
        return {
            "enabled": enabled,
            "hits": hits,
            "misses": misses,
            "hit_rate": (hits / total) if total else 0.0,
            "entries": entries,
            "refit_clears": refit_clears,
            "feedback_invalidations": feedback_invalidations,
            "drift_invalidations": drift_invalidations,
        }

    def stats(self) -> dict:
        """Fleet snapshot: telemetry rollup plus per-node load/state."""
        out = {
            **self.telemetry.snapshot(),
            "balancer": self.balancer.name,
            "decision_cache": self.decision_cache_stats(),
            "pending": self.n_pending,
            "rerouted": self.n_rerouted,
            "virtual_time_s": self.loop.now,
            "states": {n.name: n.state.value for n in self.nodes},
            "load": {
                n.name: n.stats().outstanding for n in sorted(
                    self.nodes, key=lambda n: n.name
                )
            },
        }
        if self.resilience is not None:
            out["resilience"] = {
                **asdict(self.telemetry.resilience),
                "availability": self.telemetry.availability(self.loop.now),
                "goodput": self.goodput(),
                "breakers": {
                    n.name: self._breakers[n.name].stats() for n in self.nodes
                },
            }
        return out
