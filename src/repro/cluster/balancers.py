"""Pluggable fleet load-balancing policies.

Each balancer answers one question: *which active node takes this
request?*  They differ in what they look at —

* ``round-robin`` — nothing: cycle the active set (the baseline every
  smarter policy must beat);
* ``least-outstanding`` — the node with the fewest unresolved requests;
* ``join-shortest-queue`` — the node with the least outstanding *work*
  (samples queued plus samples in flight; a node's "queue" includes the
  device command-queue backlog it has already committed to);
* ``power-of-two`` — sample two random active nodes, take the less loaded
  (the classic Mitzenmacher trick: most of JSQ's benefit at O(1) probes);
* ``least-ect`` — predictor-aware: ask each node's backlog scheduler for
  its learned estimated-completion delay for *this* request and join the
  earliest finisher — the cluster-level analogue of the paper's
  earliest-finisher spilling across devices.

Every policy reads nodes only through :meth:`ClusterNode.stats` (the
cheap :class:`~repro.serving.frontend.NodeStats` snapshot) or the public
``estimate_completion`` — never private frontend state — and only ever
returns an *active* node: draining and standby nodes are filtered before
any sampling, so a drain can never receive new traffic.

When the fleet itself is sharded (``repro.shard``), balancing becomes
two-level: a :class:`FrontTier` first picks a *shard* for each request —
from nothing but the request id (``hash``), a turn counter
(``round-robin``), or the periodically-exchanged :class:`ShardSummary`
load digests (``least-loaded``) — and the shard's own :class:`LoadBalancer`
then picks the node, unchanged.  Front tiers live here, next to the
balancers they sit above, so ``repro.shard`` depends on the cluster layer
and never the other way around.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SchedulerError
from repro.nn.builders import ModelSpec
from repro.rng import ensure_rng
from repro.cluster.node import ClusterNode
from repro.workloads.requests import InferenceRequest

__all__ = [
    "LoadBalancer",
    "RoundRobinBalancer",
    "LeastOutstandingBalancer",
    "JoinShortestQueueBalancer",
    "PowerOfTwoBalancer",
    "LeastECTBalancer",
    "BALANCERS",
    "make_balancer",
    "ShardSummary",
    "FrontTier",
    "HashFrontTier",
    "RoundRobinFrontTier",
    "LeastLoadedFrontTier",
    "FRONT_TIERS",
    "make_front_tier",
]


class LoadBalancer:
    """Base policy: subclasses implement :meth:`_pick` over active nodes."""

    name = "abstract"

    #: Whether :meth:`choose` is a pure function of fleet state at one
    #: instant — no internal state advanced, no randomness drawn.  The
    #: router's vectorized arrival path may then reuse one decision for
    #: every simultaneous arrival of the same (model, batch) cell, which
    #: is exactly what the per-request path would have computed (nothing
    #: a pure policy reads changes between same-instant routing calls).
    #: Policies that mutate per call (round-robin's turn counter,
    #: power-of-two's RNG) must leave this False.
    stateless_choice = False

    def invalidate(self) -> None:
        """Fleet membership or predictor state changed: drop any memos.

        The router calls this on every activate/drain so stateful policies
        (``least-ect``'s priming memo) never act on a stale fleet view.
        The base policies keep no cross-request memos, so this is a no-op.
        """
        return None

    def choose(
        self,
        nodes: "list[ClusterNode]",
        request: InferenceRequest,
        spec: ModelSpec,
        now: float,
    ) -> ClusterNode:
        """Select the node that takes ``request`` (arriving at ``now``).

        Only active nodes are eligible; passing a list that contains
        draining/standby nodes is fine — they are filtered here, as the
        last line of defense for the no-traffic-to-drains invariant.
        """
        eligible = [n for n in nodes if n.routable]
        if not eligible:
            raise SchedulerError("no active node to route to")
        if len(eligible) == 1:
            return eligible[0]
        return self._pick(eligible, request, spec, now)

    def _pick(
        self,
        nodes: "list[ClusterNode]",
        request: InferenceRequest,
        spec: ModelSpec,
        now: float,
    ) -> ClusterNode:
        raise NotImplementedError


class RoundRobinBalancer(LoadBalancer):
    """Cycle the active set in order — load-blind, perfectly fair."""

    name = "round-robin"

    def __init__(self) -> None:
        self._turn = 0

    def _pick(self, nodes, request, spec, now):
        node = nodes[self._turn % len(nodes)]
        self._turn += 1
        return node


class LeastOutstandingBalancer(LoadBalancer):
    """Fewest unresolved requests (queued + in flight); ties by name."""

    name = "least-outstanding"
    stateless_choice = True

    def _pick(self, nodes, request, spec, now):
        return min(nodes, key=lambda n: (n.stats().outstanding, n.name))


class JoinShortestQueueBalancer(LoadBalancer):
    """Least outstanding *work* in samples; ties by count, then name."""

    name = "join-shortest-queue"
    stateless_choice = True

    @staticmethod
    def _load(node: ClusterNode) -> tuple:
        stats = node.stats()
        return (stats.outstanding_samples, stats.outstanding, node.name)

    def _pick(self, nodes, request, spec, now):
        return min(nodes, key=self._load)


class PowerOfTwoBalancer(LoadBalancer):
    """Probe two random active nodes, join the shorter queue.

    Seeded for determinism: the same trace over the same fleet always
    routes identically.  Draining nodes are excluded *before* sampling
    (see :meth:`LoadBalancer.choose`), so neither probe can land on one.
    """

    name = "power-of-two"

    def __init__(self, rng: "int | np.random.Generator | None" = None):
        self._rng = ensure_rng(rng)

    def _pick(self, nodes, request, spec, now):
        i, j = self._rng.choice(len(nodes), size=2, replace=False)
        return min(
            (nodes[int(i)], nodes[int(j)]),
            key=JoinShortestQueueBalancer._load,
        )


class LeastECTBalancer(LoadBalancer):
    """Join the node whose scheduler estimates the earliest completion.

    Reuses each node's ``BacklogAwareScheduler.estimate_completion`` —
    device backlog plus the *learned* per-(cell, device) service time for
    this very request — so a node whose only devices are slow for this
    batch size is priced accordingly, not just by queue length.

    Before probing the nodes, every distinct predictor behind them is
    primed for both dGPU states of this (model, batch) cell in one
    batched flat-forest call (fleets built by ``make_fleet`` share one
    trained predictor, so this is usually a single call fleet-wide); the
    per-node probes then resolve their rankings from the predictor's
    cell memo instead of running the forest once per node.
    """

    name = "least-ect"
    stateless_choice = True

    #: Bound on the (model, batch) priming memo; cleared when exceeded.
    _PRIMED_MAX = 16384

    def __init__(self) -> None:
        self._primed: "set[tuple[str, int]]" = set()

    def invalidate(self) -> None:
        """Forget which cells were primed (new node => new predictor set).

        Priming is a pure performance hint — a skipped prime only means the
        predictor evaluates cells one at a time — so staleness here can
        never change a routing decision, only slow one down.
        """
        self._primed.clear()

    def _prime(self, nodes, request, spec) -> None:
        seen = set()
        for node in nodes:
            backlog = node.frontend.backlog
            scheduler = getattr(backlog, "scheduler", None)
            if scheduler is None:  # duck-typed backlog (tests, adapters)
                continue
            predictor = scheduler.predictors.get(backlog.policy)
            if (
                predictor is None
                or not getattr(predictor, "_fitted", False)
                or id(predictor) in seen
            ):
                continue
            predictor.prime_cells(spec, request.batch, ("warm", "idle"))
            seen.add(id(predictor))

    def _pick(self, nodes, request, spec, now):
        # Walking every node's getattr chain per request dominates once the
        # predictors' cell memos are warm, so remember which (model, batch)
        # cells this fleet was already primed for.
        memo_key = (spec.name, request.batch)
        if memo_key not in self._primed:
            self._prime(nodes, request, spec)
            if len(self._primed) >= self._PRIMED_MAX:
                self._primed.clear()
            self._primed.add(memo_key)

        def ect(node: ClusterNode) -> tuple:
            _, delay = node.frontend.backlog.estimate_completion(
                spec, request.batch, now
            )
            # Tiebreak on unresolved samples: the O(1) counter when the
            # node exposes it, else the stats() snapshot (same value).
            samples = getattr(node, "outstanding_samples", None)
            if samples is None:
                samples = node.stats().outstanding_samples
            return (delay, samples, node.name)

        return min(nodes, key=ect)


BALANCERS = {
    RoundRobinBalancer.name: RoundRobinBalancer,
    LeastOutstandingBalancer.name: LeastOutstandingBalancer,
    JoinShortestQueueBalancer.name: JoinShortestQueueBalancer,
    PowerOfTwoBalancer.name: PowerOfTwoBalancer,
    LeastECTBalancer.name: LeastECTBalancer,
}


def make_balancer(
    name: str, rng: "int | np.random.Generator | None" = None
) -> LoadBalancer:
    """Build a balancing policy by name (see :data:`BALANCERS`).

    ``rng`` seeds the randomized policies (power-of-two) and is ignored by
    the deterministic ones.
    """
    try:
        cls = BALANCERS[name]
    except KeyError:
        known = ", ".join(sorted(BALANCERS))
        raise SchedulerError(
            f"unknown balancing policy {name!r}; known: {known}"
        ) from None
    if cls is PowerOfTwoBalancer:
        return cls(rng=rng)
    return cls()


# -- two-level balancing: the sharded front tier ---------------------------


@dataclass(frozen=True)
class ShardSummary:
    """One shard's load digest, exchanged at every window boundary.

    Produced by :meth:`ClusterRouter.shard_summary` at the shard's local
    virtual time and shipped to the coordinator, where the front tier
    reads it to route the *next* window's arrivals.  Everything here is a
    plain counter so the summary pickles in a few bytes: the front tier
    sees depth, not node identities — which nodes absorb the load is the
    shard-local balancer's business.
    """

    group: int
    virtual_time_s: float
    outstanding: int            # requests accepted, not yet resolved
    outstanding_samples: int    # same, in samples (queued + in flight)
    queued: int                 # not yet dispatched to a device worker
    served: int
    shed: int


class FrontTier:
    """Base shard-selection policy: ``choose`` maps a request to a group.

    The coordinator calls :meth:`begin_window` with the freshly-exchanged
    summaries (ordered by group id) before routing each window, then
    :meth:`choose` once per arrival in that window.  Policies that ignore
    the summaries (``uses_summaries = False``) are *static*: the whole
    trace can be routed upfront and the shards run to completion with no
    window synchronization at all — which is also what makes a
    single-group static replay bit-identical to the monolithic vectorized
    path.
    """

    name = "abstract"

    #: Whether choose() reads the exchanged summaries.  False means the
    #: assignment depends only on the request stream itself.
    uses_summaries = True

    def __init__(self, n_groups: int):
        if n_groups <= 0:
            raise SchedulerError(f"front tier needs >= 1 group, got {n_groups}")
        self.n_groups = n_groups

    def begin_window(self, summaries: "tuple[ShardSummary, ...]") -> None:
        """Install the summaries taken at the window's opening boundary."""
        return None

    def choose(self, request: InferenceRequest) -> int:
        raise NotImplementedError


class HashFrontTier(FrontTier):
    """Static: scramble the request id, take it mod the group count.

    The splitmix64 finalizer spreads even sequential ids uniformly, so
    traffic shares stay balanced without any load feedback — and the
    assignment is a pure function of (request_id, n_groups), reproducible
    anywhere.
    """

    name = "hash"
    uses_summaries = False

    _MASK = (1 << 64) - 1

    def choose(self, request):
        z = (request.request_id + 0x9E3779B97F4A7C15) & self._MASK
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & self._MASK
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & self._MASK
        return int((z ^ (z >> 31)) % self.n_groups)


class RoundRobinFrontTier(FrontTier):
    """Static: deal requests across groups in arrival order."""

    name = "round-robin"
    uses_summaries = False

    def __init__(self, n_groups: int):
        super().__init__(n_groups)
        self._turn = 0

    def choose(self, request):
        group = self._turn % self.n_groups
        self._turn += 1
        return group


class LeastLoadedFrontTier(FrontTier):
    """Summary-driven: join the shard with the least outstanding work.

    The summaries are one window stale (that staleness bound *is* the
    lookahead), so the tier corrects them with its own in-window
    assignments: every choice adds the request's samples to the chosen
    group's pending count, preventing the degenerate "whole window to one
    shard" herd that raw stale minima would produce.  Ties break by
    outstanding request count, then group id — fully deterministic.
    """

    name = "least-loaded"

    def __init__(self, n_groups: int):
        super().__init__(n_groups)
        self._summaries: "tuple[ShardSummary, ...] | None" = None
        self._pending = [0] * n_groups
        self._pending_samples = [0] * n_groups

    def begin_window(self, summaries):
        if len(summaries) != self.n_groups or any(
            s.group != g for g, s in enumerate(summaries)
        ):
            raise SchedulerError(
                f"front tier expects one summary per group 0..{self.n_groups - 1} "
                f"in order, got groups {[s.group for s in summaries]}"
            )
        self._summaries = tuple(summaries)
        self._pending = [0] * self.n_groups
        self._pending_samples = [0] * self.n_groups

    def choose(self, request):
        summaries = self._summaries
        if summaries is None:
            raise SchedulerError(
                "least-loaded front tier has no summaries yet; call "
                "begin_window() before routing a window"
            )
        pending = self._pending
        pending_samples = self._pending_samples
        best = 0
        best_key = None
        for g in range(self.n_groups):
            s = summaries[g]
            key = (
                s.outstanding_samples + pending_samples[g],
                s.outstanding + pending[g],
                g,
            )
            if best_key is None or key < best_key:
                best, best_key = g, key
        pending[best] += 1
        pending_samples[best] += request.batch
        return best


FRONT_TIERS = {
    HashFrontTier.name: HashFrontTier,
    RoundRobinFrontTier.name: RoundRobinFrontTier,
    LeastLoadedFrontTier.name: LeastLoadedFrontTier,
}


def make_front_tier(name: str, n_groups: int) -> FrontTier:
    """Build a shard-selection policy by name (see :data:`FRONT_TIERS`)."""
    try:
        cls = FRONT_TIERS[name]
    except KeyError:
        known = ", ".join(sorted(FRONT_TIERS))
        raise SchedulerError(
            f"unknown front-tier policy {name!r}; known: {known}"
        ) from None
    return cls(n_groups)
