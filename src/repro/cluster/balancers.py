"""Pluggable fleet load-balancing policies.

Each balancer answers one question: *which active node takes this
request?*  They differ in what they look at —

* ``round-robin`` — nothing: cycle the active set (the baseline every
  smarter policy must beat);
* ``least-outstanding`` — the node with the fewest unresolved requests;
* ``join-shortest-queue`` — the node with the least outstanding *work*
  (samples queued plus samples in flight; a node's "queue" includes the
  device command-queue backlog it has already committed to);
* ``power-of-two`` — sample two random active nodes, take the less loaded
  (the classic Mitzenmacher trick: most of JSQ's benefit at O(1) probes);
* ``least-ect`` — predictor-aware: ask each node's backlog scheduler for
  its learned estimated-completion delay for *this* request and join the
  earliest finisher — the cluster-level analogue of the paper's
  earliest-finisher spilling across devices.

Every policy reads nodes only through :meth:`ClusterNode.stats` (the
cheap :class:`~repro.serving.frontend.NodeStats` snapshot) or the public
``estimate_completion`` — never private frontend state — and only ever
returns an *active* node: draining and standby nodes are filtered before
any sampling, so a drain can never receive new traffic.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SchedulerError
from repro.nn.builders import ModelSpec
from repro.rng import ensure_rng
from repro.cluster.node import ClusterNode
from repro.workloads.requests import InferenceRequest

__all__ = [
    "LoadBalancer",
    "RoundRobinBalancer",
    "LeastOutstandingBalancer",
    "JoinShortestQueueBalancer",
    "PowerOfTwoBalancer",
    "LeastECTBalancer",
    "BALANCERS",
    "make_balancer",
]


class LoadBalancer:
    """Base policy: subclasses implement :meth:`_pick` over active nodes."""

    name = "abstract"

    #: Whether :meth:`choose` is a pure function of fleet state at one
    #: instant — no internal state advanced, no randomness drawn.  The
    #: router's vectorized arrival path may then reuse one decision for
    #: every simultaneous arrival of the same (model, batch) cell, which
    #: is exactly what the per-request path would have computed (nothing
    #: a pure policy reads changes between same-instant routing calls).
    #: Policies that mutate per call (round-robin's turn counter,
    #: power-of-two's RNG) must leave this False.
    stateless_choice = False

    def invalidate(self) -> None:
        """Fleet membership or predictor state changed: drop any memos.

        The router calls this on every activate/drain so stateful policies
        (``least-ect``'s priming memo) never act on a stale fleet view.
        The base policies keep no cross-request memos, so this is a no-op.
        """
        return None

    def choose(
        self,
        nodes: "list[ClusterNode]",
        request: InferenceRequest,
        spec: ModelSpec,
        now: float,
    ) -> ClusterNode:
        """Select the node that takes ``request`` (arriving at ``now``).

        Only active nodes are eligible; passing a list that contains
        draining/standby nodes is fine — they are filtered here, as the
        last line of defense for the no-traffic-to-drains invariant.
        """
        eligible = [n for n in nodes if n.routable]
        if not eligible:
            raise SchedulerError("no active node to route to")
        if len(eligible) == 1:
            return eligible[0]
        return self._pick(eligible, request, spec, now)

    def _pick(
        self,
        nodes: "list[ClusterNode]",
        request: InferenceRequest,
        spec: ModelSpec,
        now: float,
    ) -> ClusterNode:
        raise NotImplementedError


class RoundRobinBalancer(LoadBalancer):
    """Cycle the active set in order — load-blind, perfectly fair."""

    name = "round-robin"

    def __init__(self) -> None:
        self._turn = 0

    def _pick(self, nodes, request, spec, now):
        node = nodes[self._turn % len(nodes)]
        self._turn += 1
        return node


class LeastOutstandingBalancer(LoadBalancer):
    """Fewest unresolved requests (queued + in flight); ties by name."""

    name = "least-outstanding"
    stateless_choice = True

    def _pick(self, nodes, request, spec, now):
        return min(nodes, key=lambda n: (n.stats().outstanding, n.name))


class JoinShortestQueueBalancer(LoadBalancer):
    """Least outstanding *work* in samples; ties by count, then name."""

    name = "join-shortest-queue"
    stateless_choice = True

    @staticmethod
    def _load(node: ClusterNode) -> tuple:
        stats = node.stats()
        return (stats.outstanding_samples, stats.outstanding, node.name)

    def _pick(self, nodes, request, spec, now):
        return min(nodes, key=self._load)


class PowerOfTwoBalancer(LoadBalancer):
    """Probe two random active nodes, join the shorter queue.

    Seeded for determinism: the same trace over the same fleet always
    routes identically.  Draining nodes are excluded *before* sampling
    (see :meth:`LoadBalancer.choose`), so neither probe can land on one.
    """

    name = "power-of-two"

    def __init__(self, rng: "int | np.random.Generator | None" = None):
        self._rng = ensure_rng(rng)

    def _pick(self, nodes, request, spec, now):
        i, j = self._rng.choice(len(nodes), size=2, replace=False)
        return min(
            (nodes[int(i)], nodes[int(j)]),
            key=JoinShortestQueueBalancer._load,
        )


class LeastECTBalancer(LoadBalancer):
    """Join the node whose scheduler estimates the earliest completion.

    Reuses each node's ``BacklogAwareScheduler.estimate_completion`` —
    device backlog plus the *learned* per-(cell, device) service time for
    this very request — so a node whose only devices are slow for this
    batch size is priced accordingly, not just by queue length.

    Before probing the nodes, every distinct predictor behind them is
    primed for both dGPU states of this (model, batch) cell in one
    batched flat-forest call (fleets built by ``make_fleet`` share one
    trained predictor, so this is usually a single call fleet-wide); the
    per-node probes then resolve their rankings from the predictor's
    cell memo instead of running the forest once per node.
    """

    name = "least-ect"
    stateless_choice = True

    #: Bound on the (model, batch) priming memo; cleared when exceeded.
    _PRIMED_MAX = 16384

    def __init__(self) -> None:
        self._primed: "set[tuple[str, int]]" = set()

    def invalidate(self) -> None:
        """Forget which cells were primed (new node => new predictor set).

        Priming is a pure performance hint — a skipped prime only means the
        predictor evaluates cells one at a time — so staleness here can
        never change a routing decision, only slow one down.
        """
        self._primed.clear()

    def _prime(self, nodes, request, spec) -> None:
        seen = set()
        for node in nodes:
            backlog = node.frontend.backlog
            scheduler = getattr(backlog, "scheduler", None)
            if scheduler is None:  # duck-typed backlog (tests, adapters)
                continue
            predictor = scheduler.predictors.get(backlog.policy)
            if (
                predictor is None
                or not getattr(predictor, "_fitted", False)
                or id(predictor) in seen
            ):
                continue
            predictor.prime_cells(spec, request.batch, ("warm", "idle"))
            seen.add(id(predictor))

    def _pick(self, nodes, request, spec, now):
        # Walking every node's getattr chain per request dominates once the
        # predictors' cell memos are warm, so remember which (model, batch)
        # cells this fleet was already primed for.
        memo_key = (spec.name, request.batch)
        if memo_key not in self._primed:
            self._prime(nodes, request, spec)
            if len(self._primed) >= self._PRIMED_MAX:
                self._primed.clear()
            self._primed.add(memo_key)

        def ect(node: ClusterNode) -> tuple:
            _, delay = node.frontend.backlog.estimate_completion(
                spec, request.batch, now
            )
            # Tiebreak on unresolved samples: the O(1) counter when the
            # node exposes it, else the stats() snapshot (same value).
            samples = getattr(node, "outstanding_samples", None)
            if samples is None:
                samples = node.stats().outstanding_samples
            return (delay, samples, node.name)

        return min(nodes, key=ect)


BALANCERS = {
    RoundRobinBalancer.name: RoundRobinBalancer,
    LeastOutstandingBalancer.name: LeastOutstandingBalancer,
    JoinShortestQueueBalancer.name: JoinShortestQueueBalancer,
    PowerOfTwoBalancer.name: PowerOfTwoBalancer,
    LeastECTBalancer.name: LeastECTBalancer,
}


def make_balancer(
    name: str, rng: "int | np.random.Generator | None" = None
) -> LoadBalancer:
    """Build a balancing policy by name (see :data:`BALANCERS`).

    ``rng`` seeds the randomized policies (power-of-two) and is ignored by
    the deterministic ones.
    """
    try:
        cls = BALANCERS[name]
    except KeyError:
        known = ", ".join(sorted(BALANCERS))
        raise SchedulerError(
            f"unknown balancing policy {name!r}; known: {known}"
        ) from None
    if cls is PowerOfTwoBalancer:
        return cls(rng=rng)
    return cls()
