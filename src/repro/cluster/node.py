"""Cluster nodes: one machine's serving stack, on the fleet's shared clock.

A :class:`ClusterNode` wraps one :class:`~repro.serving.frontend.ServingFrontend`
(which itself wraps a :class:`~repro.sched.backlog.BacklogAwareScheduler`
over that node's device set) plus the membership state the router and
autoscaler act on:

* ``active`` — routable, takes new traffic;
* ``draining`` — no new traffic; in-flight batches finish, queued requests
  have been handed back to the router for re-routing;
* ``standby`` — parked in the autoscaler's pool, holding no work.

Fleets are heterogeneous by construction: each :class:`NodeSpec` names the
device classes the node owns, so a fleet can mix full testbed machines
with dGPU-less ones (the paper's idle/warm dGPU states at fleet scale —
some machines simply never have the fast device to warm up).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SchedulerError
from repro.hw.specs import DeviceClass, get_device_spec
from repro.nn.builders import ModelSpec
from repro.ocl.context import Context
from repro.ocl.device import Device, DeviceState
from repro.sched.dispatcher import Dispatcher
from repro.sched.policies import Policy
from repro.sched.predictor import DevicePredictor
from repro.sched.scheduler import OnlineScheduler
from repro.serving.frontend import NodeStats, ServingFrontend, SLOConfig
from repro.serving.queues import QueueEntry
from repro.sim.engine import EventLoop

__all__ = ["NodeState", "NodeSpec", "ClusterNode", "build_node", "make_fleet"]


class NodeState(enum.Enum):
    """Membership state of one node in the fleet."""

    ACTIVE = "active"
    DRAINING = "draining"
    STANDBY = "standby"
    DOWN = "down"          # crash detected; waiting on recovery + probe

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class NodeSpec:
    """Blueprint for one fleet node.

    Parameters
    ----------
    name:
        Unique node name (the routing / telemetry key).
    device_classes:
        Device classes this machine owns ('cpu' | 'igpu' | 'dgpu').  A
        dGPU-less node still serves — the backlog scheduler's ranking is
        filtered to present devices.
    active:
        Whether the node starts in the serving set (False = standby pool).
    """

    name: str
    device_classes: tuple[str, ...] = ("cpu", "igpu", "dgpu")
    active: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("node name must be non-empty")
        if not self.device_classes:
            raise ValueError(f"node {self.name!r} needs at least one device class")
        for cls in self.device_classes:
            DeviceClass(cls)  # raises ValueError on unknown classes
        if len(set(self.device_classes)) != len(self.device_classes):
            raise ValueError(
                f"node {self.name!r} lists duplicate device classes: "
                f"{self.device_classes}"
            )


class ClusterNode:
    """One serving frontend plus its fleet-membership state."""

    def __init__(
        self,
        name: str,
        frontend: ServingFrontend,
        state: NodeState = NodeState.ACTIVE,
        device_classes: "tuple[str, ...] | None" = None,
    ):
        self.name = name
        self.frontend = frontend
        self.state = state
        self.device_classes = (
            tuple(device_classes)
            if device_classes is not None
            else tuple(
                d.device_class.value
                for d in frontend.backlog.scheduler.context.devices
            )
        )
        # Fault bookkeeping: monotone crash counter (the health monitor
        # detects crashes by comparing it against what it last handled)
        # and the membership state to restore once a probe passes.
        self.crash_count = 0
        self._pre_crash_state: "NodeState | None" = None

    # -- state -------------------------------------------------------------

    @property
    def routable(self) -> bool:
        """Whether the router may send this node new traffic."""
        return self.state is NodeState.ACTIVE

    @property
    def outstanding(self) -> int:
        """Requests accepted and not yet resolved (queued or in flight)."""
        return self.frontend.n_pending

    @property
    def outstanding_samples(self) -> int:
        """Unresolved samples (same value as ``stats().outstanding_samples``,
        without building the snapshot)."""
        return self.frontend.outstanding_samples

    def stats(self) -> NodeStats:
        """The frontend's cheap load snapshot (see ``NodeStats``)."""
        return self.frontend.node_stats()

    def activate(self) -> None:
        """Join (or re-join) the serving set."""
        if self.state is NodeState.DOWN:
            raise SchedulerError(
                f"node {self.name!r} is down; it must recover and pass a "
                "health probe before rejoining"
            )
        if self.state is NodeState.DRAINING and self.outstanding:
            raise SchedulerError(
                f"node {self.name!r} is still draining "
                f"({self.outstanding} outstanding)"
            )
        self.state = NodeState.ACTIVE

    # -- fault lifecycle ---------------------------------------------------

    @property
    def crashed(self) -> bool:
        """Whether the node's serving process is currently dead."""
        return self.frontend.crashed

    def crash(self) -> None:
        """Fail-stop the node's process, silently.

        Membership state is *not* touched: the router keeps believing the
        node is up (and keeps routing to it — arrivals fall into the
        frontend's lost limbo) until a heartbeat notices ``crash_count``
        moved and flips it DOWN.  That gap is the failure model: real
        crashes are detected, never announced.
        """
        if self.frontend.crashed:
            raise SchedulerError(f"node {self.name!r} is already crashed")
        self.crash_count += 1
        if self.state is not NodeState.DOWN:
            self._pre_crash_state = self.state
        self.frontend.crash()

    def recover(self) -> None:
        """Restart the node's process (queues empty, limbo preserved).

        The node does not rejoin the serving set here — its breaker's
        half-open probe (see ``ClusterRouter.health_check``) readmits it.
        """
        self.frontend.restart()

    def mark_down(self) -> None:
        """Record crash detection: leave the serving set (idempotent)."""
        self.state = NodeState.DOWN

    def revive(self) -> NodeState:
        """Rejoin after a passed probe; returns the restored state.

        A node that was ACTIVE when it crashed returns to ACTIVE; anything
        else (standby, draining — its drain work died with it) parks in
        STANDBY for the autoscaler to reuse.
        """
        if self.state is not NodeState.DOWN:
            raise SchedulerError(
                f"cannot revive node {self.name!r} in state {self.state}"
            )
        if self.frontend.crashed:
            raise SchedulerError(
                f"cannot revive node {self.name!r}: its process is still down"
            )
        restored = (
            NodeState.ACTIVE
            if self._pre_crash_state is NodeState.ACTIVE
            else NodeState.STANDBY
        )
        self.state = restored
        self._pre_crash_state = None
        return restored

    def start_drain(self) -> "list[QueueEntry]":
        """Leave the serving set gracefully.

        Queued (not yet dispatched) requests are popped and returned for
        the router to re-route; in-flight batches stay and finish on this
        node.  The node reaches ``standby`` once the last one completes
        (see :meth:`finish_drain_if_idle`).
        """
        if self.state is not NodeState.ACTIVE:
            raise SchedulerError(
                f"cannot drain node {self.name!r} in state {self.state}"
            )
        self.state = NodeState.DRAINING
        return self.frontend.drain_queued()

    def finish_drain_if_idle(self) -> bool:
        """Flip draining -> standby once nothing is left in flight."""
        if self.state is NodeState.DRAINING and self.outstanding == 0:
            self.state = NodeState.STANDBY
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClusterNode({self.name!r}, state={self.state.value!r}, "
            f"devices={list(self.device_classes)})"
        )


def build_node(
    spec: NodeSpec,
    predictors: "dict[Policy, DevicePredictor] | list[DevicePredictor]",
    model_specs: "dict[str, ModelSpec]",
    loop: EventLoop,
    slo: "dict[str, SLOConfig] | None" = None,
    default_slo: "SLOConfig | None" = None,
    policy: "Policy | str" = Policy.THROUGHPUT,
    max_rank: int = 2,
    rng: int = 0,
    start_state: DeviceState = DeviceState.IDLE,
    decision_cache: bool = True,
) -> ClusterNode:
    """Stand up one node: fresh devices -> dispatcher -> scheduler -> frontend.

    Every node gets its own :class:`Context` (independent device clocks
    and dGPU warm-up state) and its own deployed kernels, but shares the
    trained ``predictors`` — training happens once, fleet-wide, exactly as
    a production rollout ships one model to many replicas.
    """
    devices = [
        Device(get_device_spec(DeviceClass(cls)), start_state)
        for cls in spec.device_classes
    ]
    context = Context(devices)
    dispatcher = Dispatcher(context)
    for model_spec in model_specs.values():
        dispatcher.deploy_fresh(model_spec, rng=rng)
    scheduler = OnlineScheduler(context, dispatcher, predictors)
    frontend = ServingFrontend(
        scheduler,
        model_specs,
        slo=slo,
        default_slo=default_slo,
        policy=policy,
        max_rank=max_rank,
        loop=loop,
        decision_cache=decision_cache,
    )
    state = NodeState.ACTIVE if spec.active else NodeState.STANDBY
    return ClusterNode(
        spec.name, frontend, state=state, device_classes=spec.device_classes
    )


def make_fleet(
    node_specs: "list[NodeSpec] | tuple[NodeSpec, ...]",
    predictors: "dict[Policy, DevicePredictor] | list[DevicePredictor]",
    model_specs: "dict[str, ModelSpec]",
    loop: "EventLoop | None" = None,
    **node_kwargs,
) -> "list[ClusterNode]":
    """Build a fleet of nodes on one shared event loop.

    ``node_kwargs`` (slo, default_slo, policy, max_rank, rng, start_state,
    decision_cache) are forwarded to every :func:`build_node` call.  Returns the nodes in
    spec order; the shared loop is reachable as ``fleet[0].frontend.loop``.
    """
    if not node_specs:
        raise SchedulerError("a fleet needs at least one node spec")
    names = [s.name for s in node_specs]
    if len(set(names)) != len(names):
        raise SchedulerError(f"duplicate node names in fleet: {names}")
    shared = loop if loop is not None else EventLoop()
    return [
        build_node(spec, predictors, model_specs, loop=shared, **node_kwargs)
        for spec in node_specs
    ]
