"""Fleet-scale serving: many single-machine schedulers behind one router.

The paper schedules one request stream across the devices of a single
machine (§V); this package scales that *out*.  A fleet of
:class:`~repro.cluster.node.ClusterNode`s — each wrapping its own
:class:`~repro.serving.frontend.ServingFrontend` +
:class:`~repro.sched.backlog.BacklogAwareScheduler` over a possibly
heterogeneous device set — shares one virtual clock, and:

* :mod:`repro.cluster.balancers` — pluggable routing policies: round-robin,
  least-outstanding, join-shortest-queue, power-of-two-choices, and a
  predictor-aware least-estimated-completion-time policy that reuses each
  node's learned ``estimate_completion``;
* :mod:`repro.cluster.router` — the
  :class:`~repro.cluster.router.ClusterRouter` ingress: per-arrival
  routing decisions, graceful drains with exactly-once re-routing, and an
  event log;
* :mod:`repro.cluster.autoscaler` — an
  :class:`~repro.cluster.autoscaler.Autoscaler` that joins standby nodes
  and drains idle ones, driven by fleet queue depth and rolling p99
  versus the SLO;
* fleet telemetry lives in :class:`repro.telemetry.fleet.FleetTelemetry`
  (cluster-level percentiles, shed rate, per-node depth series);
* fault injection and the resilience stack (breakers, heartbeats,
  retries, exactly-once crash re-adoption) live in :mod:`repro.faults` —
  arm them with ``ClusterRouter(..., resilience=ResilienceConfig())``.

The node layer stays paper-faithful: every batch is still placed by the
Fig. 5 predictor + backlog spilling; the cluster layer decides only
*which machine* gets the request.
"""

from repro.cluster.autoscaler import Autoscaler, AutoscalerConfig
from repro.cluster.balancers import (
    BALANCERS,
    FRONT_TIERS,
    FrontTier,
    HashFrontTier,
    JoinShortestQueueBalancer,
    LeastECTBalancer,
    LeastLoadedFrontTier,
    LeastOutstandingBalancer,
    LoadBalancer,
    PowerOfTwoBalancer,
    RoundRobinBalancer,
    RoundRobinFrontTier,
    ShardSummary,
    make_balancer,
    make_front_tier,
)
from repro.cluster.node import (
    ClusterNode,
    NodeSpec,
    NodeState,
    build_node,
    make_fleet,
)
from repro.cluster.router import (
    ClusterEvent,
    ClusterResponse,
    ClusterResult,
    ClusterRouter,
)
from repro.telemetry.fleet import FleetTelemetry

__all__ = [
    "NodeState",
    "NodeSpec",
    "ClusterNode",
    "build_node",
    "make_fleet",
    "LoadBalancer",
    "RoundRobinBalancer",
    "LeastOutstandingBalancer",
    "JoinShortestQueueBalancer",
    "PowerOfTwoBalancer",
    "LeastECTBalancer",
    "BALANCERS",
    "make_balancer",
    "FrontTier",
    "HashFrontTier",
    "RoundRobinFrontTier",
    "LeastLoadedFrontTier",
    "ShardSummary",
    "FRONT_TIERS",
    "make_front_tier",
    "ClusterEvent",
    "ClusterResponse",
    "ClusterResult",
    "ClusterRouter",
    "Autoscaler",
    "AutoscalerConfig",
    "FleetTelemetry",
]
