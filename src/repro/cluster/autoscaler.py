"""Elastic autoscaling: grow and shrink the serving set under load.

The autoscaler is a periodic actor on the fleet's shared clock (via
:meth:`~repro.sim.engine.EventLoop.schedule_repeating`).  Each tick it:

1. sweeps finished drains (draining nodes whose last in-flight batch has
   landed flip to standby);
2. reads the fleet's load — mean outstanding requests per active node —
   and its recent p99 against the SLO;
3. **scales up** (activates a standby node) when the fleet is overloaded:
   depth above ``high_depth`` or recent p99 above ``p99_factor × slo_s``;
4. **scales down** (drains the least-loaded active node through
   :meth:`ClusterRouter.drain_node`, which re-routes its queue) when the
   fleet is comfortably idle and more than ``min_nodes`` are active.

Actions are rate-limited by ``cooldown_s`` so one burst doesn't slam the
whole standby pool in, and every decision lands in the router's event log.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.node import ClusterNode
from repro.cluster.router import ClusterRouter
from repro.sim.engine import ScheduledEvent

__all__ = ["AutoscalerConfig", "Autoscaler"]


@dataclass(frozen=True)
class AutoscalerConfig:
    """Scaling thresholds and pacing.

    Parameters
    ----------
    high_depth / low_depth:
        Mean outstanding requests per active node above which the fleet
        scales up / below which it may scale down.
    slo_s:
        The latency objective; with ``None`` the p99 signal is unused and
        only queue depth drives scaling.
    p99_factor:
        Recent p99 above ``p99_factor * slo_s`` counts as overload.
    check_every_s:
        Tick period on the shared clock.
    cooldown_s:
        Minimum spacing between scaling actions.
    min_nodes / max_nodes:
        Bounds on the active set (``max_nodes`` None = the whole fleet).
    """

    high_depth: float = 32.0
    low_depth: float = 2.0
    slo_s: "float | None" = None
    p99_factor: float = 1.0
    check_every_s: float = 0.05
    cooldown_s: float = 0.1
    min_nodes: int = 1
    max_nodes: "int | None" = None

    def __post_init__(self) -> None:
        if self.high_depth <= self.low_depth:
            raise ValueError(
                f"high_depth must exceed low_depth, got "
                f"{self.high_depth} <= {self.low_depth}"
            )
        if self.low_depth < 0.0:
            raise ValueError(f"low_depth must be >= 0, got {self.low_depth}")
        if self.slo_s is not None and self.slo_s <= 0.0:
            raise ValueError(f"slo_s must be positive, got {self.slo_s}")
        if self.p99_factor <= 0.0:
            raise ValueError(f"p99_factor must be positive, got {self.p99_factor}")
        if self.check_every_s <= 0.0:
            raise ValueError(
                f"check_every_s must be positive, got {self.check_every_s}"
            )
        if self.cooldown_s < 0.0:
            raise ValueError(f"cooldown_s must be >= 0, got {self.cooldown_s}")
        if self.min_nodes < 1:
            raise ValueError(f"min_nodes must be >= 1, got {self.min_nodes}")
        if self.max_nodes is not None and self.max_nodes < self.min_nodes:
            raise ValueError(
                f"max_nodes {self.max_nodes} < min_nodes {self.min_nodes}"
            )


class Autoscaler:
    """Depth- and SLO-driven elastic sizing of a router's fleet."""

    def __init__(self, router: ClusterRouter, config: "AutoscalerConfig | None" = None):
        self.router = router
        self.config = config if config is not None else AutoscalerConfig()
        self.n_scale_ups = 0
        self.n_scale_downs = 0
        self.n_replacements = 0   # floor pulls while a node was DOWN
        self._last_action_s: "float | None" = None

    # -- scheduling --------------------------------------------------------

    def schedule(self, until: float) -> "ScheduledEvent | None":
        """Tick every ``check_every_s`` on the shared clock through ``until``.

        Ticks stop past the horizon so the event loop can drain; schedule
        again (e.g. per trace) to keep scaling across phases.
        """
        return self.router.loop.schedule_repeating(
            self.config.check_every_s,
            lambda _loop: self.check(),
            until=until,
            label="autoscaler",
        )

    # -- signals -----------------------------------------------------------

    def mean_depth(self) -> float:
        """Mean outstanding requests per active node (0 with none active)."""
        active = self.router.active_nodes
        if not active:
            return 0.0
        return sum(n.stats().outstanding for n in active) / len(active)

    def _p99_breached(self) -> bool:
        if self.config.slo_s is None:
            return False
        p99 = self.router.telemetry.recent_p99_s()
        if p99 is None:
            return False
        return p99 > self.config.p99_factor * self.config.slo_s

    def _cooled_down(self, now: float) -> bool:
        return (
            self._last_action_s is None
            or now - self._last_action_s >= self.config.cooldown_s
        )

    # -- the tick ----------------------------------------------------------

    def check(self) -> "str | None":
        """One scaling decision; returns 'up', 'down', or None.

        Also the drain janitor: every tick sweeps draining nodes whose
        in-flight work has landed into the standby pool.
        """
        router, cfg = self.router, self.config
        router.sweep_drains()
        now = router.loop.now

        active = router.active_nodes
        if len(active) < cfg.min_nodes:
            # Never let the serving set fall below its floor: pull a
            # standby in regardless of cooldown (draining nodes will land
            # and join the pool).  Crashed nodes leave the active set the
            # same way — a DOWN node holds no capacity, so its loss opens
            # a deficit here and a healthy standby replaces it.
            standby = router.standby_nodes
            if standby:
                router.activate_node(standby[0].name)
                self.n_scale_ups += 1
                if router.down_nodes:
                    self.n_replacements += 1
                self._last_action_s = now
                return "up"
            if not active:
                return None

        depth = self.mean_depth()
        overloaded = depth > cfg.high_depth or self._p99_breached()
        underloaded = depth < cfg.low_depth and not self._p99_breached()
        if not self._cooled_down(now):
            return None

        if overloaded:
            standby = router.standby_nodes
            cap = cfg.max_nodes if cfg.max_nodes is not None else len(router.nodes)
            if standby and len(active) < cap:
                router.activate_node(standby[0].name)
                self.n_scale_ups += 1
                self._last_action_s = now
                return "up"
            return None

        if underloaded and len(active) > cfg.min_nodes:
            victim = self._drain_candidate(active)
            router.drain_node(victim.name)
            self.n_scale_downs += 1
            self._last_action_s = now
            return "down"
        return None

    @staticmethod
    def _drain_candidate(active: "list[ClusterNode]") -> ClusterNode:
        """Cheapest node to retire: least outstanding work, ties by name."""
        return min(active, key=lambda n: (n.stats().outstanding, n.name))
