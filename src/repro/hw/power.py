"""Power and energy accounting (the PCM / nvidia-smi substitute).

Paper §IV-C fixes the accounting rule we follow: *charge every component
required for the execution*.  A dGPU classification charges the GPU board
plus the host CPU that stages buffers, programs DMA and polls completion;
a CPU or iGPU classification excludes the discrete GPU entirely ("when we
use the CPU (or the integrated GPU), we exclude the discrete GPU, as it is
not needed").

Per component the draw is the usual idle + dynamic split::

    P(t) = P_idle + (P_busy - P_idle) * occupancy * c(t)

where ``c(t)`` is the clock fraction.  Because the integral of ``c`` over a
run equals ``work / R_max`` regardless of the ramp (see
:mod:`repro.hw.dvfs`), dynamic energy is ramp-invariant and the idle-start
penalty is exactly ``P_idle * (elapsed_idle - elapsed_warm)`` — always
positive, matching the paper's observation that an idle-start GPU run
always costs more joules.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.costmodel import KernelTiming
from repro.hw.specs import DeviceClass, DeviceSpec

__all__ = ["EnergyBreakdown", "PowerModel", "LAUNCH_UTILIZATION"]

#: Fraction of a device's dynamic power drawn while dispatching kernels:
#: enqueue paths keep roughly a core's worth of logic busy on every device
#: (the CPU spinning in its own runtime, a GPU's command processor).
LAUNCH_UTILIZATION = 0.25


@dataclass(frozen=True)
class EnergyBreakdown:
    """Joules per involved component for one classification."""

    device_j: float
    host_j: float
    duration_s: float

    @property
    def total_j(self) -> float:
        """Device plus host-assist joules."""
        return self.device_j + self.host_j

    @property
    def avg_watts(self) -> float:
        """Mean draw over the run — the quantity Fig. 3 plots as 'Power'."""
        if self.duration_s <= 0.0:
            return 0.0
        return self.total_j / self.duration_s


class PowerModel:
    """Energy accounting for one device's classifications."""

    def __init__(self, device: DeviceSpec):
        self.device = device

    def energy(self, timing: KernelTiming) -> EnergyBreakdown:
        """Energy of the run described by ``timing``.

        Dynamic energy is charged for the compute phase at the achieved
        occupancy; idle draw is charged for the whole run; transfers charge
        the host-assist (and, on the PCIe path, the device's idle draw is
        already covered by the whole-run idle term).
        """
        dev = self.device
        total = timing.total_s

        dyn = dev.busy_watts - dev.idle_watts
        # Ramp-invariant dynamic energy: occupancy * (P_busy - P_idle) *
        # compute_warm (the clock integral identity), plus the dispatch
        # draw during launches, plus the idle floor for the full duration.
        device_j = (
            dev.idle_watts * total
            + dyn * timing.occupancy * timing.compute_warm_s
            + dyn * LAUNCH_UTILIZATION * timing.launch_s
        )

        if dev.device_class is DeviceClass.CPU:
            host_j = 0.0  # the CPU *is* the host; its draw is device_j
        else:
            # The host's staging/polling work scales with how busy it keeps
            # the device: full-rate during transfers and launches,
            # occupancy-weighted while the kernel runs.
            host_active = (
                timing.transfer_in_s
                + timing.launch_s
                + timing.transfer_out_s
                + timing.occupancy * timing.compute_s
            )
            host_j = dev.host_assist_watts * host_active

        return EnergyBreakdown(device_j=device_j, host_j=host_j, duration_s=total)
