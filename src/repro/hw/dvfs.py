"""Clock/boost behaviour — the dGPU's *idle* vs *warmed-up* states.

The paper's footnote 1 (§IV-C): NVIDIA Boost 3.0 adjusts GPU clocks
automatically; starting a measurement from an idle GPU can cost up to ~7x
throughput until the clocks ramp, and the gap closes once enough work has
been pushed (Mnist-Small: idle matches warm at >=64K samples).

We model the clock as a first-order system: the effective clock fraction
``c`` relaxes exponentially toward 1.0 while the device is busy (time
constant ``tau_warm``) and back toward ``idle_frac`` while it sits idle
(``tau_cool``).  The time to execute ``work`` FLOPs starting from clock
fraction ``c0`` solves

    work = R_max * \\int_0^T [1 - (1 - c0) * exp(-t / tau_warm)] dt

which :meth:`ClockModel.time_to_complete` inverts with Newton iterations
(the integrand is monotone so convergence is certain).

A key identity the energy model exploits: the *dynamic* energy of a ramped
run equals that of a warm run, because \\int c(t) dt = work / R_max exactly;
only the idle-power-times-longer-runtime term differs.  Hence an idle-start
run always costs more joules than a warm one — precisely the paper's
observation in §IV-C ("when the GPU starts from an idle state, it always
consumes more energy ... than if it is warmed-up").
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["ClockModel", "ClockState"]


@dataclass(frozen=True)
class ClockState:
    """Instantaneous DVFS state of a device: clock fraction at a timestamp."""

    clock_frac: float = 1.0
    timestamp: float = 0.0

    def __post_init__(self) -> None:
        if not (0.0 < self.clock_frac <= 1.0):
            raise ValueError(f"clock_frac must be in (0, 1], got {self.clock_frac}")


@dataclass(frozen=True)
class ClockModel:
    """Boost-clock dynamics for one device.

    ``idle_frac = 1.0`` (CPU, iGPU) makes the model a no-op: those devices'
    OS governors ramp in microseconds, invisible at our resolution; only the
    dGPU's P-state machinery is slow enough to matter (paper footnote 1).
    """

    idle_frac: float = 1.0
    tau_warm_s: float = 8e-3
    tau_cool_s: float = 2.0

    def __post_init__(self) -> None:
        if not (0.0 < self.idle_frac <= 1.0):
            raise ValueError(f"idle_frac must be in (0, 1], got {self.idle_frac}")
        if self.tau_warm_s <= 0.0 or self.tau_cool_s <= 0.0:
            raise ValueError("time constants must be positive")

    @property
    def is_static(self) -> bool:
        """True when the clock never ramps (CPU/iGPU governors)."""
        return self.idle_frac >= 1.0

    def idle_state(self, timestamp: float = 0.0) -> ClockState:
        """State of a device that has been idle long enough to down-clock."""
        return ClockState(clock_frac=self.idle_frac, timestamp=timestamp)

    def warm_state(self, timestamp: float = 0.0) -> ClockState:
        """State of a fully warmed-up device."""
        return ClockState(clock_frac=1.0, timestamp=timestamp)

    def cool(self, state: ClockState, until: float) -> ClockState:
        """Relax the clock toward ``idle_frac`` during an idle gap."""
        if until < state.timestamp:
            raise ValueError("cannot cool backwards in time")
        if self.is_static:
            return replace(state, timestamp=until)
        import math

        dt = until - state.timestamp
        decay = math.exp(-dt / self.tau_cool_s)
        c = self.idle_frac + (state.clock_frac - self.idle_frac) * decay
        return ClockState(clock_frac=max(self.idle_frac, c), timestamp=until)

    def time_to_complete(self, state: ClockState, warm_seconds: float) -> tuple[float, ClockState]:
        """Wall time to finish work that would take ``warm_seconds`` at full
        clock, starting from ``state``; returns (elapsed, new state).

        Solves ``warm_seconds = T - (1-c0) * tau * (1 - exp(-T/tau))`` for T.
        """
        if warm_seconds < 0.0:
            raise ValueError(f"warm_seconds must be >= 0, got {warm_seconds}")
        if warm_seconds == 0.0 or self.is_static or state.clock_frac >= 1.0:
            end = state.timestamp + warm_seconds
            return warm_seconds, replace(state, timestamp=end)

        import math

        c0 = state.clock_frac
        tau = self.tau_warm_s
        deficit = (1.0 - c0) * tau

        def done(t: float) -> float:
            return t - deficit * (1.0 - math.exp(-t / tau)) - warm_seconds

        # Bracket: at full clock T = warm_seconds; at worst T = warm/c0 + tau-ish.
        lo = warm_seconds
        hi = warm_seconds / c0 + 5.0 * tau
        t = warm_seconds / max(c0, 1e-6)  # initial guess: constant slow clock
        for _ in range(60):
            f = done(t)
            if abs(f) < 1e-15 + 1e-12 * warm_seconds:
                break
            df = 1.0 - (deficit / tau) * math.exp(-t / tau)
            step = f / df
            t_new = t - step
            if not (lo <= t_new <= hi):  # Newton escaped: bisect
                if f > 0:
                    hi = t
                else:
                    lo = t
                t_new = 0.5 * (lo + hi)
            t = t_new
        c_end = 1.0 - (1.0 - c0) * math.exp(-t / tau)
        return t, ClockState(clock_frac=min(1.0, c_end), timestamp=state.timestamp + t)

    def slowdown(self, state: ClockState, warm_seconds: float) -> float:
        """Multiplicative penalty ``elapsed / warm_seconds`` for a run."""
        if warm_seconds <= 0.0:
            return 1.0
        elapsed, _ = self.time_to_complete(state, warm_seconds)
        return elapsed / warm_seconds


#: Per-device clock models.  Only the dGPU ramps; idle_frac tuned so the
#: worst-case idle-vs-warm gap is ~6-7x (paper: "differences up to 7x").
CLOCK_MODELS = {
    "cpu": ClockModel(idle_frac=1.0),
    "igpu": ClockModel(idle_frac=1.0),
    "dgpu": ClockModel(idle_frac=0.15, tau_warm_s=8e-3, tau_cool_s=2.0),
}


def clock_model_for(device_class) -> ClockModel:
    """Clock model for a :class:`~repro.hw.specs.DeviceClass` (or its value)."""
    key = getattr(device_class, "value", device_class)
    try:
        return CLOCK_MODELS[key]
    except KeyError:
        raise KeyError(f"no clock model for device class {device_class!r}") from None
