"""Hardware models for the simulated testbed.

The paper's base system (§III-A) is an Intel Core i7-8700 (6C/12T, with a
UHD Graphics 630 iGPU on-die) plus an NVIDIA GTX 1080 Ti.  This subpackage
models those three devices analytically:

* :mod:`repro.hw.specs` — published device specifications plus calibration
  constants for the execution-time model,
* :mod:`repro.hw.dvfs` — the dGPU Boost-3.0-style clock ramp (idle vs warm),
* :mod:`repro.hw.interconnect` — PCIe vs on-die ring-bus data movement,
* :mod:`repro.hw.costmodel` — roofline execution-time model,
* :mod:`repro.hw.power` — power draw and energy accounting.

The model reproduces the *shape* of the paper's Fig. 3/4 (who wins at which
batch size, where crossovers fall, the idle-GPU penalty), not the authors'
absolute wall-clock numbers; see DESIGN.md §4 for the calibration targets.
"""

from repro.hw.specs import (
    CPU_I7_8700,
    DGPU_GTX_1080TI,
    IGPU_UHD_630,
    TESTBED,
    DeviceClass,
    DeviceSpec,
    get_device_spec,
)
from repro.hw.dvfs import ClockModel, ClockState
from repro.hw.costmodel import CostModel, KernelTiming
from repro.hw.power import EnergyBreakdown, PowerModel
from repro.hw.interconnect import TransferModel

__all__ = [
    "DeviceClass",
    "DeviceSpec",
    "CPU_I7_8700",
    "IGPU_UHD_630",
    "DGPU_GTX_1080TI",
    "TESTBED",
    "get_device_spec",
    "ClockModel",
    "ClockState",
    "CostModel",
    "KernelTiming",
    "PowerModel",
    "EnergyBreakdown",
    "TransferModel",
]
