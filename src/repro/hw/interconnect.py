"""Data-movement models: PCIe for the dGPU, on-die ring bus for CPU/iGPU.

Paper §II-A: a discrete-GPU classification performs four steps — copy into
the I/O region, DMA to device memory, the kernel, and the result DMA back.
The iGPU instead shares physical memory with the CPU, so buffers are mapped
in place (``clEnqueueMapBuffer``) with no bulk copy.

The PCIe model is the standard latency + size/bandwidth affine model, with
an efficiency knee for small transfers ("the PCIe interconnect [is unable]
to handle small data transfers efficiently") and a pinned-memory bandwidth
bonus (the paper stages classifications through page-locked buffers).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TransferModel", "PCIE_3_X16", "RING_BUS"]


@dataclass(frozen=True)
class TransferModel:
    """Affine + small-transfer-penalty transfer-time model."""

    name: str
    latency_s: float          # per-transaction fixed latency (DMA setup, doorbell)
    bandwidth_gb_s: float     # large-transfer asymptotic bandwidth (pinned)
    pageable_penalty: float   # bandwidth divisor when the host buffer is pageable
    small_knee_bytes: float   # transfers below this see degraded efficiency
    zero_copy: bool = False   # shared physical memory: map instead of copy

    def __post_init__(self) -> None:
        if self.latency_s < 0.0 or self.bandwidth_gb_s <= 0.0:
            raise ValueError(f"{self.name}: bad latency/bandwidth")
        if self.pageable_penalty < 1.0:
            raise ValueError(f"{self.name}: pageable_penalty must be >= 1")

    def effective_bandwidth(self, n_bytes: float, pinned: bool = True) -> float:
        """Achieved bytes/s for a transfer of ``n_bytes``."""
        bw = self.bandwidth_gb_s * 1e9
        if not pinned:
            bw /= self.pageable_penalty
        if n_bytes < self.small_knee_bytes:
            # Linear ramp from ~0 efficiency at 0 bytes to full at the knee:
            # models per-TLP overheads dominating tiny DMA bursts.
            bw *= max(n_bytes / self.small_knee_bytes, 1e-3)
        return bw

    def transfer_time(self, n_bytes: float, pinned: bool = True) -> float:
        """Seconds to move ``n_bytes`` one way."""
        if n_bytes < 0.0:
            raise ValueError(f"transfer size must be >= 0, got {n_bytes}")
        if self.zero_copy:
            # Mapping cost only: page-table walk amortized, no bulk copy.
            return self.latency_s
        if n_bytes == 0.0:
            return self.latency_s
        return self.latency_s + n_bytes / self.effective_bandwidth(n_bytes, pinned)


#: PCIe 3.0 x16: ~12 GB/s effective pinned h2d, ~8 us doorbell+DMA setup.
PCIE_3_X16 = TransferModel(
    name="pcie3-x16",
    latency_s=8e-6,
    bandwidth_gb_s=12.0,
    pageable_penalty=2.2,
    small_knee_bytes=16 * 1024,
)

#: On-die ring bus shared by CPU cores and iGPU: zero-copy mapped buffers,
#: only a (small) map/unmap bookkeeping latency.
RING_BUS = TransferModel(
    name="ring-bus",
    latency_s=1.5e-6,
    bandwidth_gb_s=41.6,
    pageable_penalty=1.0,
    small_knee_bytes=0.0,
    zero_copy=True,
)
