"""Device specifications for the paper's testbed (§III-A).

Each :class:`DeviceSpec` carries two groups of fields:

* **published** numbers taken straight from the paper / vendor datasheets
  (core counts, peak GFLOPS, memory bandwidth, TDP);
* **calibration** constants for the analytical execution model (effective
  sustained FLOPS under OpenCL, kernel-launch overhead, per-sample
  dispatch overhead, parallelism half-saturation point, power envelope).

Calibration constants were tuned so the characterization sweep reproduces
the crossover structure the paper reports (DESIGN.md §4); the tuning lives
in ``tests/experiments/test_shapes.py`` which fails if a future edit drifts
the shape.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "DeviceClass",
    "DeviceSpec",
    "CPU_I7_8700",
    "IGPU_UHD_630",
    "DGPU_GTX_1080TI",
    "TESTBED",
    "get_device_spec",
]


class DeviceClass(enum.Enum):
    """The three device families of the paper (plus room for more: the
    scheduler is device-agnostic, §V-A)."""

    CPU = "cpu"
    IGPU = "igpu"
    DGPU = "dgpu"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of one computational device."""

    name: str
    device_class: DeviceClass
    vendor: str

    # -- published ---------------------------------------------------------
    compute_units: int            # cores / EUs / SMs
    hw_threads: int               # parallel hardware contexts
    base_clock_mhz: float
    boost_clock_mhz: float
    peak_gflops: float            # vendor fp32 peak
    mem_bandwidth_gb_s: float     # device-visible memory bandwidth
    mem_bytes: int                # dedicated memory (0 = shares host DRAM)
    tdp_watts: float
    shares_host_memory: bool      # iGPU/CPU: zero-copy via ring bus

    # -- calibration: execution time ---------------------------------------
    sustained_eff: float          # fraction of peak GFLOPS OpenCL sustains
    kernel_launch_s: float        # fixed cost per kernel launch
    per_sample_overhead_s: float  # dispatch cost per classified sample
    halfsat_workitems: float      # work-items for 50% occupancy
    optimal_workgroup: int        # paper §IV-B: CPU 4096, GPUs 256

    # -- calibration: power --------------------------------------------------
    idle_watts: float             # draw when powered but not computing
    busy_watts: float             # draw at full occupancy
    host_assist_watts: float      # CPU-side draw while orchestrating this device

    def __post_init__(self) -> None:
        if self.compute_units <= 0:
            raise ValueError(
                f"{self.name}: compute_units must be positive, got "
                f"{self.compute_units}"
            )
        if self.hw_threads <= 0:
            raise ValueError(
                f"{self.name}: hw_threads must be positive, got {self.hw_threads}"
            )
        if self.peak_gflops <= 0.0:
            raise ValueError(
                f"{self.name}: peak_gflops must be positive, got {self.peak_gflops}"
            )
        if self.mem_bandwidth_gb_s <= 0.0:
            raise ValueError(
                f"{self.name}: mem_bandwidth_gb_s must be positive, got "
                f"{self.mem_bandwidth_gb_s}"
            )
        if not (0.0 < self.sustained_eff <= 1.0):
            raise ValueError(
                f"{self.name}: sustained_eff must be in (0, 1], got "
                f"{self.sustained_eff}"
            )
        if self.busy_watts < self.idle_watts:
            raise ValueError(f"{self.name}: busy_watts < idle_watts")

    @property
    def effective_flops(self) -> float:
        """Sustained fp32 FLOP/s the OpenCL kernels reach at full occupancy."""
        return self.peak_gflops * 1e9 * self.sustained_eff

    @property
    def mem_bandwidth(self) -> float:
        """Memory bandwidth in bytes/s."""
        return self.mem_bandwidth_gb_s * 1e9

    def occupancy(self, work_items: float) -> float:
        """Fraction of peak throughput sustained for a given parallel width.

        Saturating ``p / (p + p_half)`` law: devices with many hardware
        contexts (the dGPU's 3584 cores with latency-hiding) need a large
        work-item pool to reach peak, while the CPU's 12 threads saturate
        almost immediately — the §IV-C observation that "GPU is suitable
        for big sample sizes, while the CPU is more suitable for small".
        """
        if work_items <= 0.0:
            return 0.0
        return work_items / (work_items + self.halfsat_workitems)


#: Intel Core i7-8700 "Coffee Lake": 6 cores / 12 threads @ 3.7 GHz
#: (4.3 boost), AVX2: ~355 GFLOPS fp32 peak, 41.6 GB/s dual-channel
#: DDR4-2666, 95 W package TDP.
CPU_I7_8700 = DeviceSpec(
    name="i7-8700",
    device_class=DeviceClass.CPU,
    vendor="Intel",
    compute_units=6,
    hw_threads=12,
    base_clock_mhz=3700.0,
    boost_clock_mhz=4300.0,
    peak_gflops=355.0,
    mem_bandwidth_gb_s=41.6,
    mem_bytes=0,
    tdp_watts=95.0,
    shares_host_memory=True,
    sustained_eff=0.45,          # OpenCL-on-CPU GEMM efficiency
    kernel_launch_s=4e-6,
    per_sample_overhead_s=5e-9,  # caps tiny-model throughput ~15 Gbit/s
    halfsat_workitems=32.0,      # 12 threads saturate almost immediately
    optimal_workgroup=4096,
    idle_watts=8.0,
    busy_watts=70.0,
    host_assist_watts=0.0,       # it *is* the host
)

#: Intel UHD Graphics 630: 24 EUs, 64-thread dispatcher, 460.8 GFLOPS at
#: 1200 MHz, shares the 41.6 GB/s DRAM and LLC with the CPU, ~20 W.
IGPU_UHD_630 = DeviceSpec(
    name="uhd-630",
    device_class=DeviceClass.IGPU,
    vendor="Intel",
    compute_units=24,
    hw_threads=64 * 7,           # 64-thread dispatcher, 7-way SIMD lanes
    base_clock_mhz=350.0,
    boost_clock_mhz=1200.0,
    peak_gflops=460.8,
    mem_bandwidth_gb_s=41.6,
    mem_bytes=0,
    tdp_watts=20.0,
    shares_host_memory=True,
    sustained_eff=0.60,
    kernel_launch_s=6e-6,
    per_sample_overhead_s=3e-9,
    halfsat_workitems=1.5e3,
    optimal_workgroup=256,
    idle_watts=2.0,
    busy_watts=19.0,
    host_assist_watts=14.0,      # CPU core feeding/mapping buffers
)

#: NVIDIA GTX 1080 Ti: 3584 CUDA cores in 28 SMs, 11 GB GDDR5X @ 484 GB/s,
#: 10.6 TFLOPS fp32, 250 W TDP, attached over PCIe 3.0 x16.
DGPU_GTX_1080TI = DeviceSpec(
    name="gtx-1080ti",
    device_class=DeviceClass.DGPU,
    vendor="NVIDIA",
    compute_units=28,
    hw_threads=3584,
    base_clock_mhz=1480.0,
    boost_clock_mhz=1890.0,
    peak_gflops=10600.0,
    mem_bandwidth_gb_s=484.0,
    mem_bytes=11 * 1024**3,
    tdp_watts=250.0,
    shares_host_memory=False,
    sustained_eff=0.28,
    kernel_launch_s=10e-6,
    per_sample_overhead_s=1e-9,
    halfsat_workitems=2.5e5,     # needs huge batches to hide latency
    optimal_workgroup=256,
    idle_watts=55.0,
    busy_watts=230.0,
    host_assist_watts=22.0,      # CPU staging, DMA setup, completion polling
)

#: The paper's full testbed, in scheduler class order (CPU, dGPU, iGPU --
#: matching the 30/40/30 class indices of §V-B).
TESTBED: tuple[DeviceSpec, ...] = (CPU_I7_8700, DGPU_GTX_1080TI, IGPU_UHD_630)

_BY_NAME = {d.name: d for d in TESTBED}
_BY_CLASS = {d.device_class: d for d in TESTBED}


def get_device_spec(key: "str | DeviceClass") -> DeviceSpec:
    """Look up a testbed device by name ('i7-8700') or DeviceClass."""
    if isinstance(key, DeviceClass):
        return _BY_CLASS[key]
    if key in _BY_NAME:
        return _BY_NAME[key]
    try:
        return _BY_CLASS[DeviceClass(key)]
    except ValueError:
        known = sorted(_BY_NAME) + [c.value for c in DeviceClass]
        raise KeyError(f"unknown device {key!r}; known: {', '.join(known)}") from None
