"""Analytical execution-time model (the virtual clock's physics).

For one classification of ``batch`` samples on one device the model charges
four phases, mirroring the four steps of §II-A:

1. **transfer in** — input samples to the device.  PCIe latency+bandwidth
   for the dGPU; a zero-copy buffer map for CPU/iGPU (§IV-B).
2. **launch** — one kernel enqueue per network layer (the thread-per-node
   kernels of §IV-B process a layer per launch).
3. **compute** — a roofline: ``max(flops / (F_eff * occupancy), bytes /
   memory_bandwidth)`` plus a per-sample dispatch overhead.  Occupancy is a
   saturating function of the parallel work-item pool (batch x widest
   layer), which is what makes the dGPU lose at small batches and win at
   large ones.  On the dGPU the compute phase is additionally stretched by
   the Boost-3.0 clock ramp when the device starts idle.
4. **transfer out** — the class scores back to the host.

All times are *virtual*: nothing here reads a wall clock, so sweeps are
deterministic and instantaneous to simulate.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from repro.hw.dvfs import ClockModel, ClockState, clock_model_for
from repro.hw.interconnect import PCIE_3_X16, RING_BUS, TransferModel
from repro.hw.specs import DeviceSpec
from repro.nn.builders import ModelSpec
from repro.nn.flops import ModelCost, model_cost

__all__ = ["KernelTiming", "CostModel", "parallel_width"]


@dataclass(frozen=True)
class KernelTiming:
    """Phase-by-phase timing of one batched classification."""

    transfer_in_s: float
    launch_s: float
    compute_s: float
    transfer_out_s: float
    occupancy: float
    clock_start: ClockState
    clock_end: ClockState
    compute_warm_s: float  # compute time had the clocks been warm

    @property
    def total_s(self) -> float:
        """End-to-end time: transfers + launches + compute."""
        return self.transfer_in_s + self.launch_s + self.compute_s + self.transfer_out_s

    @property
    def warmup_penalty_s(self) -> float:
        """Extra seconds attributable to the clock ramp."""
        return self.compute_s - self.compute_warm_s


@functools.lru_cache(maxsize=None)
def _cost_for(spec: ModelSpec) -> ModelCost:
    return model_cost(spec)


def parallel_width(spec: ModelSpec) -> float:
    """Per-sample parallel work items: the widest layer's output elements.

    The kernels assign a work-item per node (FFNN) or per output position x
    filter (CNN), so the widest layer bounds how much parallelism one
    sample exposes; the total pool is ``batch * width``.
    """
    cost = _cost_for(spec)
    return max(layer.activation_elems for layer in cost.layers)


class CostModel:
    """Execution-time model for one device.

    Parameters
    ----------
    device:
        The device spec (published + calibration constants).
    transfer:
        Data-movement model; defaults to PCIe for discrete devices and the
        zero-copy ring bus for host-shared ones.
    clock:
        DVFS model; defaults to the per-class model in :mod:`repro.hw.dvfs`.
    """

    def __init__(
        self,
        device: DeviceSpec,
        transfer: TransferModel | None = None,
        clock: ClockModel | None = None,
    ):
        self.device = device
        if transfer is None:
            transfer = RING_BUS if device.shares_host_memory else PCIE_3_X16
        self.transfer = transfer
        self.clock = clock if clock is not None else clock_model_for(device.device_class)

    def timing(
        self,
        spec: ModelSpec,
        batch: int,
        state: ClockState | None = None,
        workgroup_eff: float = 1.0,
        pinned: bool = True,
        overlap_transfers: bool = False,
    ) -> KernelTiming:
        """Timing breakdown for classifying ``batch`` samples of ``spec``.

        ``workgroup_eff`` in (0, 1] derates compute throughput when the
        caller configured a non-optimal work-group size (§IV-B ablation);
        ``pinned=False`` models pageable host buffers on the PCIe path.

        ``overlap_transfers=True`` models double-buffered streaming on
        discrete devices (separate copy engines): the input DMA is chunked
        and hidden behind compute, so the charged transfer-in time is only
        the first chunk plus any bandwidth shortfall — ``max(T_in,
        T_compute)`` replaces ``T_in + T_compute``.  Host-shared devices
        are already zero-copy, so the flag is a no-op there.
        """
        if batch <= 0:
            raise ValueError(f"batch must be positive, got {batch}")
        if not (0.0 < workgroup_eff <= 1.0):
            raise ValueError(f"workgroup_eff must be in (0, 1], got {workgroup_eff}")
        if state is None:
            state = self.clock.warm_state()

        dev = self.device
        cost = _cost_for(spec)

        t_in = self.transfer.transfer_time(spec.sample_bytes * batch, pinned)
        t_out = self.transfer.transfer_time(spec.n_classes * 4 * batch, pinned)
        t_launch = cost.total_launches * dev.kernel_launch_s

        work_items = batch * parallel_width(spec)
        occ = dev.occupancy(work_items)
        flop_time = (cost.flops_per_sample * batch) / (
            dev.effective_flops * occ * workgroup_eff
        )
        # All memory traffic is derated by occupancy: sustaining bandwidth
        # needs in-flight work-items to cover DRAM latency.  Note the
        # consequence for weight-heavy models at tiny batches: the weight
        # stream is fixed-size work whose only parallelism comes from the
        # batch (thread-per-node kernels do not pad), so *total* time can
        # genuinely dip as the batch grows while throughput — the paper's
        # plotted quantity — stays monotone (T(2b) <= 2*T(b) always).
        mem_time = (cost.bytes_per_sample(batch) * batch) / (dev.mem_bandwidth * occ)
        compute_warm = max(flop_time, mem_time) + batch * dev.per_sample_overhead_s

        if overlap_transfers and not self.transfer.zero_copy:
            # Double buffering: all but the priming chunk of the input DMA
            # hides behind compute.  Chunk granularity = one 16-chunk slice
            # of the batch (or the whole batch when tiny).
            chunk = max(1, batch // 16)
            prime = self.transfer.transfer_time(spec.sample_bytes * chunk, pinned)
            t_in = prime + max(0.0, (t_in - prime) - compute_warm)

        # The clock ramp stretches kernel dispatch and compute (both run at
        # device core clocks); DMA transfers are host/IO-paced.
        _, pre_state = self._advance(state, t_in)
        on_device_warm = t_launch + compute_warm
        on_device_actual, end_state = self.clock.time_to_complete(pre_state, on_device_warm)
        _, final_state = self._advance(end_state, t_out)
        ramp_stretch = on_device_actual - on_device_warm

        return KernelTiming(
            transfer_in_s=t_in,
            launch_s=t_launch,
            compute_s=compute_warm + ramp_stretch,
            transfer_out_s=t_out,
            occupancy=occ,
            clock_start=state,
            clock_end=final_state,
            compute_warm_s=compute_warm,
        )

    def _advance(self, state: ClockState, dt: float) -> tuple[float, ClockState]:
        """Advance the timestamp without warming or cooling (host phases are
        short relative to both time constants)."""
        from dataclasses import replace

        return dt, replace(state, timestamp=state.timestamp + dt)

    def idle_state(self) -> ClockState:
        """Convenience: the device's cold/idle clock state."""
        return self.clock.idle_state()

    def warm_state(self) -> ClockState:
        """Convenience: the device's fully warmed clock state."""
        return self.clock.warm_state()
