"""Tenants: co-located model mixes with their own service objectives.

A *tenant* is the unit of isolation on a partitioned accelerator: it owns
a set of served models (requests are attributed to the tenant that owns
their model), a kind (``latency`` tenants want a tight tail, ``batch``
tenants want throughput and tolerate queueing), and an optional latency
SLO the repartitioner defends.  "ML Inference Scheduling with Predictable
Latency" (arXiv:2512.18725) is the motivating setting: predictable
per-tenant latency on a shared GPU needs explicit isolation modeling, not
a single monolithic device.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TenantSpec", "TenantSet"]

_VALID_KINDS = ("latency", "batch")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: a model mix plus its service objective.

    Parameters
    ----------
    name:
        Unique tenant identifier (telemetry key).
    models:
        The model names this tenant submits; a model belongs to exactly
        one tenant (that is how requests are attributed).
    kind:
        ``'latency'`` (tail-sensitive, gets dedicated partitions) or
        ``'batch'`` (throughput-oriented, shares leftover partitions).
    slo_s:
        Latency objective the repartitioner defends (None = best effort).
    weight:
        Relative importance for future weighted placement (must be > 0).
    """

    name: str
    models: tuple[str, ...]
    kind: str = "latency"
    slo_s: "float | None" = None
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        models = tuple(self.models)
        object.__setattr__(self, "models", models)
        if not models:
            raise ValueError(f"tenant {self.name!r} needs at least one model")
        if len(set(models)) != len(models):
            raise ValueError(f"tenant {self.name!r} lists duplicate models: {models}")
        if self.kind not in _VALID_KINDS:
            raise ValueError(
                f"tenant {self.name!r}: kind must be one of {_VALID_KINDS}, "
                f"got {self.kind!r}"
            )
        if self.slo_s is not None and self.slo_s <= 0.0:
            raise ValueError(
                f"tenant {self.name!r}: slo_s must be positive, got {self.slo_s}"
            )
        if self.weight <= 0.0:
            raise ValueError(
                f"tenant {self.name!r}: weight must be positive, got {self.weight}"
            )


class TenantSet:
    """An ordered, validated collection of tenants sharing one node.

    Tenant names must be unique and model ownership disjoint — a request's
    model resolves to at most one tenant.  Declaration order is the
    placement priority order within each kind.
    """

    def __init__(self, tenants: "list[TenantSpec] | tuple[TenantSpec, ...]"):
        self.tenants: tuple[TenantSpec, ...] = tuple(tenants)
        if not self.tenants:
            raise ValueError("a tenant set needs at least one tenant")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names: {names}")
        self._by_model: dict[str, TenantSpec] = {}
        for tenant in self.tenants:
            for model in tenant.models:
                owner = self._by_model.get(model)
                if owner is not None:
                    raise ValueError(
                        f"model {model!r} owned by both {owner.name!r} "
                        f"and {tenant.name!r}"
                    )
                self._by_model[model] = tenant

    def __iter__(self):
        return iter(self.tenants)

    def __len__(self) -> int:
        return len(self.tenants)

    def get(self, name: str) -> TenantSpec:
        """One tenant by name (KeyError with the known names otherwise)."""
        for tenant in self.tenants:
            if tenant.name == name:
                return tenant
        known = ", ".join(t.name for t in self.tenants)
        raise KeyError(f"no tenant {name!r}; known: {known}")

    def tenant_for(self, model: str) -> "TenantSpec | None":
        """The tenant owning ``model`` (None for unowned models)."""
        return self._by_model.get(model)

    @property
    def model_names(self) -> "set[str]":
        return set(self._by_model)

    @property
    def latency_tenants(self) -> tuple[TenantSpec, ...]:
        return tuple(t for t in self.tenants if t.kind == "latency")

    @property
    def batch_tenants(self) -> tuple[TenantSpec, ...]:
        return tuple(t for t in self.tenants if t.kind == "batch")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TenantSet({[t.name for t in self.tenants]})"
