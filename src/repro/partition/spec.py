"""Partitionable device specs: split one accelerator into N logical slices.

The split mirrors how vendors actually partition: a MIG instance (or an
MI300 DPX/QPX partition) owns an integer share of the compute units and an
even slice of the memory system.  Compute-side numbers scale by the
*realized* CU ratio — ``(cu // n) / cu`` — so leftover compute units that
do not divide evenly stay dark, exactly like MIG's unassigned slices.
Memory capacity and nominal bandwidth split evenly (NPS-style), and the
roofline cost model (:mod:`repro.hw.costmodel`) picks the scaled numbers
up with no changes, per the portable kernel model of Braun et al.
(arXiv:2001.07104).

Nominal per-partition bandwidth is what an *otherwise idle* device
delivers.  Real partitions share a memory fabric: every concurrently
active sibling costs 5–10% of effective bandwidth (AMD's public MI300
partitioning numbers).  :meth:`PartitionableDeviceSpec.contention_multiplier`
models that as a latency stretch of ``(1 - penalty) ** -k`` for ``k``
busy siblings, which the serving workers apply at launch time.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.hw.specs import DeviceSpec

__all__ = [
    "VALID_PARTITION_MODES",
    "PartitionableDeviceSpec",
    "partition_name",
]

#: Partition counts hardware actually exposes (MIG: 1-7 slices; MI300:
#: SPX=1, DPX=2, QPX=4, CPX=8 — we keep the power-of-two ladder).
VALID_PARTITION_MODES = (1, 2, 4, 8)


def partition_name(parent: str, index: int, mode: int) -> str:
    """The canonical name of one partition, e.g. ``gtx-1080ti.p1of4``."""
    return f"{parent}.p{index}of{mode}"


@dataclass(frozen=True)
class PartitionableDeviceSpec:
    """A :class:`DeviceSpec` that can be split into logical partitions.

    Parameters
    ----------
    parent:
        The whole device (mode 1 serves it unchanged — the disabled path
        is digit-identical to a plain deployment).
    modes:
        The partition counts this device supports; must be a subset of
        :data:`VALID_PARTITION_MODES`, must include 1, and every mode must
        leave each partition at least one compute unit.
    bandwidth_penalty:
        Fraction of effective memory bandwidth lost per concurrently
        active sibling partition (vendor guidance: 5–10%).
    reconfigure_cost_s:
        Virtual seconds a freshly created partition is unavailable after a
        split/merge (drain + firmware reconfiguration).
    """

    parent: DeviceSpec
    modes: tuple[int, ...] = VALID_PARTITION_MODES
    bandwidth_penalty: float = 0.07
    reconfigure_cost_s: float = 0.002

    def __post_init__(self) -> None:
        modes = tuple(sorted({int(m) for m in self.modes}))
        object.__setattr__(self, "modes", modes)
        if 1 not in modes:
            raise ValueError(
                f"{self.parent.name}: partition modes must include 1, got {modes}"
            )
        bad = [m for m in modes if m not in VALID_PARTITION_MODES]
        if bad:
            raise ValueError(
                f"{self.parent.name}: unsupported partition modes {bad}; "
                f"valid: {VALID_PARTITION_MODES}"
            )
        too_fine = [m for m in modes if self.parent.compute_units // m < 1]
        if too_fine:
            raise ValueError(
                f"{self.parent.name}: modes {too_fine} leave a partition "
                f"with zero of the {self.parent.compute_units} compute units"
            )
        if not (0.0 <= self.bandwidth_penalty < 1.0):
            raise ValueError(
                f"{self.parent.name}: bandwidth_penalty must be in [0, 1), "
                f"got {self.bandwidth_penalty}"
            )
        if self.reconfigure_cost_s < 0.0:
            raise ValueError(
                f"{self.parent.name}: reconfigure_cost_s must be >= 0, "
                f"got {self.reconfigure_cost_s}"
            )

    @property
    def max_mode(self) -> int:
        return self.modes[-1]

    def partition_specs(self, mode: int) -> tuple[DeviceSpec, ...]:
        """Derive the ``mode`` per-partition specs (mode 1 = the parent).

        Compute-side fields scale by the realized CU ratio
        ``(cu // mode) / cu`` (floor division — leftover CUs stay dark);
        memory capacity and nominal bandwidth split evenly; per-launch
        overheads (kernel launch, per-sample dispatch) and clock/efficiency
        calibration are properties of the silicon and stay unchanged.
        """
        if mode not in self.modes:
            raise ValueError(
                f"{self.parent.name}: mode {mode} not supported "
                f"(supported: {self.modes})"
            )
        p = self.parent
        if mode == 1:
            return (p,)
        cu = p.compute_units // mode
        ratio = cu / p.compute_units
        # Power: the static floor splits evenly with the silicon; the
        # dynamic (busy - idle) swing follows the compute share, keeping
        # busy >= idle by construction.
        idle = p.idle_watts / mode
        busy = idle + (p.busy_watts - p.idle_watts) * ratio
        return tuple(
            replace(
                p,
                name=partition_name(p.name, i, mode),
                compute_units=cu,
                hw_threads=max(1, int(p.hw_threads * ratio)),
                peak_gflops=p.peak_gflops * ratio,
                mem_bandwidth_gb_s=p.mem_bandwidth_gb_s / mode,
                mem_bytes=p.mem_bytes // mode,
                tdp_watts=p.tdp_watts / mode,
                halfsat_workitems=p.halfsat_workitems * ratio,
                idle_watts=idle,
                busy_watts=busy,
                host_assist_watts=p.host_assist_watts / mode,
            )
            for i in range(1, mode + 1)
        )

    def partition_names(self, mode: int) -> tuple[str, ...]:
        """Names the partitions of ``mode`` will carry."""
        return tuple(s.name for s in self.partition_specs(mode))

    # -- shared-bandwidth contention ---------------------------------------

    def contention_multiplier(self, active_siblings: int) -> float:
        """Latency stretch when ``active_siblings`` partitions are busy.

        Each busy sibling takes ``bandwidth_penalty`` of the shared
        fabric's effective bandwidth, compounding: the multiplier is
        ``(1 - penalty) ** -k`` (1.0 with no busy sibling, so the
        uncontended path is untouched).
        """
        if active_siblings < 0:
            raise ValueError(
                f"active_siblings must be >= 0, got {active_siblings}"
            )
        if active_siblings == 0 or self.bandwidth_penalty == 0.0:
            return 1.0
        return (1.0 - self.bandwidth_penalty) ** (-active_siblings)

    def contended_bandwidth_gb_s(self, mode: int, active_siblings: int) -> float:
        """Effective per-partition bandwidth under sibling contention."""
        nominal = self.partition_specs(mode)[0].mem_bandwidth_gb_s
        return nominal / self.contention_multiplier(active_siblings)
