"""The partition manager: reconfigure one accelerator under live traffic.

:class:`PartitionedAccelerator` owns one partitionable device inside a
running :class:`~repro.serving.frontend.ServingFrontend` and moves it
between partition modes (1/2/4/8-way) without losing a request:

1. abort the retiring partitions' in-flight launches, collecting each
   aborted request paired with its still-pending response;
2. attach the new partitions (warmth carries over; their queue clocks are
   held at ``now + reconfigure_cost_s``, the firmware reconfiguration
   window) *before* detaching the old ones, so the context never empties;
3. install per-partition contention hooks — every launch pays the
   shared-fabric stretch for its concurrently busy siblings;
4. invalidate cached placement decisions and re-apply the tenant
   placement policy onto the new partition names;
5. re-admit every collected request exactly once, on its original
   response handle.

Mode 1 is the disabled path: the parent device serves untouched, no
contention hook is installed, and results stay digit-identical to a
deployment that never heard of partitioning.
"""

from __future__ import annotations

from repro.errors import SchedulerError
from repro.ocl.device import Device
from repro.partition.placement import PlacementPolicy
from repro.partition.spec import PartitionableDeviceSpec
from repro.partition.tenants import TenantSet

__all__ = ["PartitionedAccelerator"]


class PartitionedAccelerator:
    """Online split/merge of one device serving through a frontend.

    Parameters
    ----------
    frontend:
        The serving frontend whose context holds the parent device.
    pspec:
        The partitionable spec (parent device + supported modes).
    tenants:
        Tenant set for placement pinning; defaults to the frontend's own.
    placement:
        Policy mapping tenants onto partitions after each repartition.
    start_mode:
        Partition mode to move to immediately (1 = leave the parent).
    """

    def __init__(
        self,
        frontend,
        pspec: PartitionableDeviceSpec,
        tenants: "TenantSet | None" = None,
        placement: "PlacementPolicy | None" = None,
        start_mode: int = 1,
    ):
        self.frontend = frontend
        self.pspec = pspec
        self.tenants = tenants if tenants is not None else frontend.tenants
        self.placement = placement if placement is not None else PlacementPolicy()
        context = frontend.backlog.scheduler.context
        present = [d.name for d in context.devices]
        if pspec.parent.name not in present:
            raise SchedulerError(
                f"parent device {pspec.parent.name!r} not in the serving "
                f"context (has: {present})"
            )
        self.mode = 1
        self._active: tuple[str, ...] = (pspec.parent.name,)
        self.n_repartitions = 0
        self.n_readmitted = 0
        #: (virtual time, old mode, new mode) per reconfiguration.
        self.history: list[tuple[float, int, int]] = []
        if start_mode != 1:
            self.set_mode(start_mode)

    @property
    def partition_names(self) -> tuple[str, ...]:
        """Names of the currently active partitions (mode 1: the parent)."""
        return self._active

    # -- reconfiguration ---------------------------------------------------

    def set_mode(self, mode: int) -> int:
        """Reconfigure to ``mode`` partitions; returns requests re-admitted.

        In-flight work on the retiring partitions is aborted and re-admitted
        after the topology settles (exactly once, original responses);
        queued requests stay queued — placement happens at flush time, on
        whatever partitions exist then.
        """
        if mode not in self.pspec.modes:
            raise SchedulerError(
                f"{self.pspec.parent.name}: mode {mode} not supported "
                f"(supported: {self.pspec.modes})"
            )
        if mode == self.mode:
            return 0
        fe = self.frontend
        now = fe.loop.now
        context = fe.backlog.scheduler.context

        # Warmth carries across the reconfiguration: the silicon does not
        # cool because its logical carving changed.
        state = context.get_device(self._active[0]).probe_state(now)

        collected = []
        for name in self._active:
            collected.extend(fe.abort_device(name))

        # Attach-before-detach: the context must never empty, and the new
        # partitions' queue clocks absorb the reconfiguration window.
        ready_at = now + self.pspec.reconfigure_cost_s
        devices = [
            Device(spec, start_state=state)
            for spec in self.pspec.partition_specs(mode)
        ]
        for device in devices:
            fe.attach_device(device, ready_at=ready_at)
        for name in self._active:
            fe.detach_device(name)

        self._install_contention(devices)
        fe.backlog.notify_repartition()
        names = tuple(d.name for d in devices)
        if self.tenants is not None:
            self.placement.apply(fe.backlog, self.tenants, names)

        old_mode, self.mode, self._active = self.mode, mode, names
        self.n_repartitions += 1
        self.history.append((now, old_mode, mode))

        for entry, response in collected:
            fe.readmit(entry, response)
        self.n_readmitted += len(collected)
        return len(collected)

    def split(self) -> int:
        """Step to the next finer supported mode; returns the new mode."""
        i = self.pspec.modes.index(self.mode)
        if i + 1 >= len(self.pspec.modes):
            raise SchedulerError(
                f"{self.pspec.parent.name}: already at the finest supported "
                f"mode ({self.mode})"
            )
        self.set_mode(self.pspec.modes[i + 1])
        return self.mode

    def merge(self) -> int:
        """Step to the next coarser supported mode; returns the new mode."""
        i = self.pspec.modes.index(self.mode)
        if i == 0:
            raise SchedulerError(
                f"{self.pspec.parent.name}: already at the coarsest mode (1)"
            )
        self.set_mode(self.pspec.modes[i - 1])
        return self.mode

    # -- noisy neighbours --------------------------------------------------

    def _install_contention(self, devices: "list[Device]") -> None:
        """Give each partition's worker a busy-sibling stretch hook.

        The hook is evaluated at launch time: a sibling whose command
        queue's clock runs ahead of ``now`` is mid-launch, and each busy
        sibling costs ``bandwidth_penalty`` of the shared fabric.  Mode 1
        (or a zero penalty) installs nothing — the launch path stays
        byte-identical to an unpartitioned device.
        """
        fe = self.frontend
        if len(devices) == 1 or self.pspec.bandwidth_penalty == 0.0:
            for device in devices:
                fe.worker_for(device.name).contention = None
            return
        scheduler = fe.backlog.scheduler
        names = [d.name for d in devices]
        for name in names:
            sibling_queues = tuple(
                scheduler.queue_for(other) for other in names if other != name
            )

            def contention(now, _queues=sibling_queues):
                busy = sum(1 for q in _queues if q.current_time > now)
                return self.pspec.contention_multiplier(busy)

            fe.worker_for(name).contention = contention

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        return {
            "mode": self.mode,
            "partitions": list(self._active),
            "repartitions": self.n_repartitions,
            "readmitted": self.n_readmitted,
        }
