"""Partitionable accelerators and multi-tenant placement.

Production accelerators are divisible — NVIDIA MIG slices a GPU into
isolated instances, AMD's Instinct MI300 exposes SPX/DPX/QPX compute
partitions with NPS memory modes — which turns *within-device* placement
into a scheduling axis.  This package models that axis on top of the
paper's device simulation:

* :class:`~repro.partition.spec.PartitionableDeviceSpec` splits one
  :class:`~repro.hw.specs.DeviceSpec` into N logical partitions with
  roofline-scaled compute and a shared-bandwidth contention model;
* :class:`~repro.partition.tenants.TenantSpec` /
  :class:`~repro.partition.tenants.TenantSet` describe co-located model
  mixes with their own SLOs;
* :class:`~repro.partition.placement.PlacementPolicy` pins tenants onto
  partitions (latency tenants get dedicated slices, batch tenants share
  the rest);
* :class:`~repro.partition.manager.PartitionedAccelerator` performs the
  online split/merge lifecycle over a live serving frontend (drain the
  affected partitions via the exactly-once abort path, re-admit, charge a
  reconfiguration cost);
* :class:`~repro.partition.repartitioner.Repartitioner` drives that
  lifecycle from the same depth/p99 signals as the fleet autoscaler — an
  autoscaler axis *inside* a node.
"""

from repro.partition.manager import PartitionedAccelerator
from repro.partition.placement import PlacementPolicy
from repro.partition.repartitioner import Repartitioner, RepartitionerConfig
from repro.partition.spec import (
    VALID_PARTITION_MODES,
    PartitionableDeviceSpec,
    partition_name,
)
from repro.partition.tenants import TenantSet, TenantSpec

__all__ = [
    "VALID_PARTITION_MODES",
    "PartitionableDeviceSpec",
    "partition_name",
    "TenantSpec",
    "TenantSet",
    "PlacementPolicy",
    "PartitionedAccelerator",
    "Repartitioner",
    "RepartitionerConfig",
]
