"""Placement policy: pin tenants onto the partitions of one device.

The assignment is deterministic and recomputed at every repartition:
latency tenants (declaration order) each take a dedicated partition —
noisy neighbors cannot queue behind them — while batch tenants share
whatever remains.  Pins are applied through
:meth:`~repro.sched.backlog.BacklogAwareScheduler.set_model_device_pin`,
which is *class-scoped*: among devices of a pinned class only the pinned
partitions are eligible for the tenant's models, but the backlog spill
can still escape to other device classes (CPU/iGPU) when the partition
saturates — the paper's best-of-many-worlds behaviour, tenant-scoped.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.partition.tenants import TenantSet

__all__ = ["PlacementPolicy"]


@dataclass(frozen=True)
class PlacementPolicy:
    """Deterministic tenant → partition assignment.

    ``dedicate_latency=True`` (default) reserves one partition per latency
    tenant before batch tenants divide the rest; with more latency tenants
    than spare partitions, dedicated slices are shared round-robin.
    """

    dedicate_latency: bool = True

    def assign(
        self, tenants: TenantSet, partitions: "tuple[str, ...]"
    ) -> "dict[str, tuple[str, ...]]":
        """Map tenant name → eligible partition names.

        An empty dict (mode 1, a single undivided device) means *no pins*:
        every tenant shares the whole device, which is exactly the
        pre-partitioning behaviour.
        """
        parts = list(partitions)
        if len(parts) <= 1:
            return {}
        latency = tenants.latency_tenants
        batch = tenants.batch_tenants
        out: dict[str, tuple[str, ...]] = {}
        if not self.dedicate_latency:
            shared = tuple(parts)
            return {t.name: shared for t in tenants}
        # Reserve dedicated slices for latency tenants, always leaving at
        # least one partition for the batch tenants when any exist.
        n_dedicated = min(len(latency), len(parts) - (1 if batch else 0))
        for i, tenant in enumerate(latency):
            if n_dedicated > 0:
                out[tenant.name] = (parts[i % n_dedicated],)
            else:
                out[tenant.name] = tuple(parts)
        rest = tuple(parts[n_dedicated:]) or tuple(parts)
        for tenant in batch:
            out[tenant.name] = rest
        return out

    def apply(
        self,
        backlog,
        tenants: TenantSet,
        partitions: "tuple[str, ...]",
    ) -> "dict[str, tuple[str, ...]]":
        """Install (or clear, at mode 1) the pins on a backlog scheduler.

        Every tenant model gets its pin set — or cleared when the
        assignment is empty — so stale pins from a previous mode never
        survive a repartition.  Returns the assignment for logging.
        """
        assignment = self.assign(tenants, partitions)
        for tenant in tenants:
            names = assignment.get(tenant.name)
            for model in tenant.models:
                backlog.set_model_device_pin(model, names)
        return assignment
