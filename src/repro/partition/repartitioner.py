"""The online repartitioner: an autoscaler *inside* one accelerator.

Where :class:`~repro.cluster.autoscaler.Autoscaler` adds and drains whole
nodes, the :class:`Repartitioner` resizes the carving of a single device:
a periodic actor on the serving loop that watches the latency tenants'
recent p99 against their SLOs and splits the accelerator finer when a
tenant's tail is breached (isolating it from its noisy neighbours), or
merges partitions back when every latency tenant is comfortably inside
its SLO (a merged device wastes no dark compute units and pays no
sibling-bandwidth contention).

Repartitioning is not free — every reconfiguration drains and re-admits
in-flight work and pays ``reconfigure_cost_s`` before the new partitions
start — so actions are spaced by ``cooldown_s``, mirroring the cluster
autoscaler's pacing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchedulerError
from repro.partition.manager import PartitionedAccelerator

__all__ = ["RepartitionerConfig", "Repartitioner"]


@dataclass(frozen=True)
class RepartitionerConfig:
    """Repartitioning thresholds and pacing.

    Parameters
    ----------
    check_every_s:
        Tick period on the serving loop.
    cooldown_s:
        Minimum spacing between reconfigurations.
    p99_factor:
        A latency tenant whose recent p99 exceeds ``p99_factor * slo_s``
        counts as breached (split pressure).
    merge_factor:
        Merge only when *every* latency tenant's recent p99 sits below
        ``merge_factor * slo_s`` — hysteresis against flapping.
    min_mode / max_mode:
        Bounds on the modes the repartitioner will move between (the
        accelerator's own supported modes still apply).
    """

    check_every_s: float = 0.05
    cooldown_s: float = 0.1
    p99_factor: float = 1.0
    merge_factor: float = 0.5
    min_mode: int = 1
    max_mode: int = 8

    def __post_init__(self) -> None:
        if self.check_every_s <= 0.0:
            raise ValueError(
                f"check_every_s must be positive, got {self.check_every_s}"
            )
        if self.cooldown_s < 0.0:
            raise ValueError(f"cooldown_s must be >= 0, got {self.cooldown_s}")
        if self.p99_factor <= 0.0:
            raise ValueError(f"p99_factor must be positive, got {self.p99_factor}")
        if not (0.0 < self.merge_factor < self.p99_factor + 1e-12):
            raise ValueError(
                f"merge_factor must be in (0, p99_factor], got {self.merge_factor}"
            )
        if self.min_mode < 1:
            raise ValueError(f"min_mode must be >= 1, got {self.min_mode}")
        if self.max_mode < self.min_mode:
            raise ValueError(
                f"max_mode {self.max_mode} < min_mode {self.min_mode}"
            )


class Repartitioner:
    """SLO-tail-driven split/merge of one partitioned accelerator."""

    def __init__(
        self,
        accelerator: PartitionedAccelerator,
        config: "RepartitionerConfig | None" = None,
    ):
        self.accelerator = accelerator
        self.config = config if config is not None else RepartitionerConfig()
        if accelerator.tenants is None:
            raise SchedulerError(
                "repartitioner needs a tenant set on the accelerator "
                "(its SLO signals are per-tenant tails)"
            )
        if not accelerator.tenants.latency_tenants:
            raise SchedulerError(
                "repartitioner needs at least one latency tenant with an SLO"
            )
        self.n_splits = 0
        self.n_merges = 0
        self._last_action_s: "float | None" = None

    # -- scheduling --------------------------------------------------------

    def schedule(self, until: float):
        """Tick every ``check_every_s`` on the serving loop through ``until``."""
        return self.accelerator.frontend.loop.schedule_repeating(
            self.config.check_every_s,
            lambda _loop: self.check(),
            until=until,
            label="repartitioner",
        )

    # -- signals -----------------------------------------------------------

    def _tenant_p99s(self) -> "list[tuple[float, float] | None]":
        """(recent p99, slo) per latency tenant; None before any sample."""
        telemetry = self.accelerator.frontend.telemetry
        out = []
        for tenant in self.accelerator.tenants.latency_tenants:
            if tenant.slo_s is None:
                continue
            stats = telemetry.tenants.get(tenant.name)
            if stats is None or not len(stats.recent):
                out.append(None)
                continue
            out.append((stats.recent.p99_s, tenant.slo_s))
        return out

    def _cooled_down(self, now: float) -> bool:
        return (
            self._last_action_s is None
            or now - self._last_action_s >= self.config.cooldown_s
        )

    # -- the tick ----------------------------------------------------------

    def check(self) -> "str | None":
        """One repartitioning decision; returns 'split', 'merge', or None."""
        accel, cfg = self.accelerator, self.config
        now = accel.frontend.loop.now
        if not self._cooled_down(now):
            return None

        signals = self._tenant_p99s()
        if not signals:
            return None
        breached = any(
            s is not None and s[0] > cfg.p99_factor * s[1] for s in signals
        )
        comfortable = all(
            s is not None and s[0] < cfg.merge_factor * s[1] for s in signals
        )

        modes = accel.pspec.modes
        i = modes.index(accel.mode)
        if breached:
            if i + 1 < len(modes) and modes[i + 1] <= cfg.max_mode:
                accel.split()
                self.n_splits += 1
                self._last_action_s = now
                return "split"
            return None
        if comfortable and i > 0 and modes[i - 1] >= cfg.min_mode:
            accel.merge()
            self.n_merges += 1
            self._last_action_s = now
            return "merge"
        return None

    def stats(self) -> dict:
        return {
            "splits": self.n_splits,
            "merges": self.n_merges,
            "mode": self.accelerator.mode,
        }
