"""Shard worker: a few logical shard groups living in one process.

The unit of partitioning is the *logical group* — its own
:class:`~repro.sim.engine.EventLoop`, its own fleet subset, its own
shard-local :class:`~repro.cluster.router.ClusterRouter` — and a worker
process simply hosts one or more groups.  That split is what makes the
merged outcome digest invariant across worker counts: group ``g`` sees
exactly the same event sequence whether it shares a process with every
other group (``n_workers=1``) or runs alone (``n_workers=n_groups``),
because nothing a group computes ever reads another group's state
mid-window.

Determinism inputs per group, all derived from the plan:

* its RNG: child ``SeedSequence`` number ``g`` of the global seed;
* its sequence numbers: allocated by its *own* loop, so cross-group
  scheduling order never mixes;
* its traffic: the coordinator's front tier decides, identically for
  every worker count.

``worker_main`` is the subprocess entry point: a blocking receive loop
over the coordinator pipe.  :class:`GroupRuntime` holds the in-process
logic so the coordinator's inline mode (tests, property suites) can
drive the identical code without forking.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.node import NodeSpec, make_fleet
from repro.cluster.router import ClusterRouter
from repro.sim.engine import EventLoop
from repro.shard.messages import (
    Finalize,
    GroupOutcome,
    Ready,
    StaticAssign,
    WindowAssign,
    WindowDone,
    WorkerFailure,
    WorkerResult,
    encode_outcomes,
)

__all__ = ["GroupConfig", "WorkerConfig", "GroupRuntime", "worker_main"]


@dataclass(frozen=True)
class GroupConfig:
    """Everything one logical group needs to stand up its shard.

    ``seed_seq`` is the group's spawned child of the plan's global
    ``SeedSequence`` — the same object for group ``g`` no matter which
    worker hosts it, which is half of the digest-invariance story (the
    other half being the group-local event loop).
    """

    group: int
    node_specs: tuple[NodeSpec, ...]
    balancer: str
    seed_seq: np.random.SeedSequence
    exact_latency: bool = False


@dataclass(frozen=True)
class WorkerConfig:
    """One worker process's share of the plan plus the shared inputs.

    ``trace``/``predictors``/``model_specs`` are big and read-only; the
    coordinator forks workers, so they arrive by copy-on-write page
    sharing, never through the pipe.  ``fail_at_window`` is a test hook:
    the worker hard-exits (``os._exit``) at the start of that window,
    simulating a mid-replay process death for the crash-safety tests.
    """

    worker: int
    groups: tuple[GroupConfig, ...]
    trace: object
    predictors: object
    model_specs: dict
    slo: "dict | None" = None
    default_slo: "object | None" = None
    profile: "str | None" = None
    fail_at_window: "int | None" = None


class GroupRuntime:
    """One logical shard, live: loop + fleet + router + outcome ledger."""

    def __init__(self, cfg: GroupConfig, shared: WorkerConfig):
        self.group = cfg.group
        self.loop = EventLoop()
        fleet = make_fleet(
            list(cfg.node_specs),
            shared.predictors,
            shared.model_specs,
            loop=self.loop,
            slo=shared.slo,
            default_slo=shared.default_slo,
        )
        if cfg.exact_latency:
            # Same reasoning as the million bench: percentiles are read
            # once at the end, so the unbounded exact digest beats paying
            # the streaming estimator on every completion.
            from repro.telemetry.serving import LatencyDigest

            for node in fleet:
                node.frontend.telemetry.latency = LatencyDigest(exact=True)
        self.router = ClusterRouter(
            fleet, balancer=cfg.balancer, rng=np.random.default_rng(cfg.seed_seq)
        )
        self.router.telemetry.attach_loop(self.loop)
        self._requests = shared.trace.requests
        self._responses: list = []

    def feed(self, indices) -> None:
        """Inject assigned arrivals (trace indices, already time-ordered)."""
        requests = self._requests
        batch = [requests[i] for i in indices.tolist()]
        self._responses.extend(self.router.feed_requests(batch))

    def run_window(self, until_s: float) -> None:
        """Advance this group's loop to the conservative boundary."""
        self.loop.run(until=until_s)

    def summary(self):
        return self.router.shard_summary(self.group)

    def finalize(self) -> GroupOutcome:
        """Drain to completion and pack outcomes for the merge."""
        self.router.run()
        pending = self.router.n_pending
        if pending:
            raise RuntimeError(
                f"group {self.group} drained with {pending} requests unresolved"
            )
        return encode_outcomes(
            self.group,
            self._responses,
            self.router.telemetry.snapshot(),
            self.loop.utilization(),
        )


def worker_main(conn, cfg: WorkerConfig) -> None:
    """Subprocess entry point: serve the coordinator until Finalize.

    Protocol: send :class:`Ready`, then handle :class:`StaticAssign` /
    :class:`WindowAssign` messages until :class:`Finalize` arrives, and
    answer it with a :class:`WorkerResult`.  Any exception is reported as
    a :class:`WorkerFailure` before the process dies, so the coordinator
    can attach the traceback to its own error.
    """
    profiler = None
    if cfg.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    try:
        runtimes = {g.group: GroupRuntime(g, cfg) for g in cfg.groups}
        conn.send(Ready(cfg.worker, tuple(runtimes)))
        while True:
            msg = conn.recv()
            if isinstance(msg, Finalize):
                outcomes = tuple(rt.finalize() for rt in runtimes.values())
                if profiler is not None:
                    profiler.disable()
                    profiler.dump_stats(f"{cfg.profile}.shard{cfg.worker}")
                conn.send(WorkerResult(cfg.worker, outcomes))
                return
            if isinstance(msg, StaticAssign):
                for group, indices in msg.requests.items():
                    runtimes[group].feed(indices)
                continue
            assert isinstance(msg, WindowAssign), msg
            if cfg.fail_at_window is not None and msg.window >= cfg.fail_at_window:
                import os

                os._exit(3)
            for group, indices in msg.requests.items():
                runtimes[group].feed(indices)
            summaries = []
            for rt in runtimes.values():
                rt.run_window(msg.until_s)
                summaries.append(rt.summary())
            conn.send(WindowDone(cfg.worker, msg.window, tuple(summaries)))
    except Exception:
        import traceback

        try:
            conn.send(WorkerFailure(cfg.worker, traceback.format_exc()))
        except Exception:
            pass
        raise
