"""repro.shard: multi-process fleet sharding with conservative sync.

Partition the node fleet into logical groups, host them across worker
processes, and replay a trace with virtual time advancing in
conservative lookahead windows — the parallel-DES answer to "the
single-process replay is CPU-bound".  See :mod:`repro.shard.coordinator`
for the protocol and the determinism contract (merged outcome digests
are bit-identical across worker counts), and ``docs/sharding.md`` for
the guided tour.
"""

from repro.cluster.balancers import ShardSummary
from repro.shard.coordinator import (
    ShardPlan,
    ShardResult,
    ShardWorkerError,
    run_sharded,
)
from repro.shard.digest import digest_responses, digest_rows, outcome_line
from repro.shard.worker import GroupConfig, GroupRuntime, WorkerConfig, worker_main

__all__ = [
    "ShardPlan",
    "ShardResult",
    "ShardWorkerError",
    "ShardSummary",
    "run_sharded",
    "GroupConfig",
    "WorkerConfig",
    "GroupRuntime",
    "worker_main",
    "digest_rows",
    "digest_responses",
    "outcome_line",
]
