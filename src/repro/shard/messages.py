"""Wire messages for the shard protocol (coordinator <-> workers).

Everything crossing a :class:`multiprocessing.Pipe` is defined here, and
everything is deliberately small: assignments carry *indices into the
shared trace* (the trace itself is inherited by fork, copy-on-write, so a
million requests never serialize), and outcomes come back as numpy
columns with interned string tables — a handful of arrays per group, not
a million python objects.

The per-group :class:`GroupOutcome` round-trips every field the
determinism digest hashes (see :mod:`repro.shard.digest`), so the
coordinator can merge worker results by request id and produce a digest
bit-identical to what a single-process replay computes over its own
:class:`~repro.cluster.router.ClusterResponse` list.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.balancers import ShardSummary

__all__ = [
    "Ready",
    "StaticAssign",
    "WindowAssign",
    "WindowDone",
    "Finalize",
    "GroupOutcome",
    "WorkerResult",
    "WorkerFailure",
    "encode_outcomes",
]


@dataclass(frozen=True)
class Ready:
    """Worker finished building its fleets and is waiting for traffic."""

    worker: int
    groups: tuple[int, ...]


@dataclass(frozen=True)
class StaticAssign:
    """Entire-trace assignment for static front tiers (no windows).

    ``requests`` maps each of the worker's groups to the trace indices it
    serves, in trace order.  The worker feeds everything upfront and runs
    to completion at :class:`Finalize` — zero synchronization, which is
    what makes a single-group static replay bit-identical to the
    monolithic vectorized path.
    """

    requests: "dict[int, np.ndarray]"


@dataclass(frozen=True)
class WindowAssign:
    """One conservative window's arrivals for this worker's groups.

    The worker injects each group's requests (arrivals all within
    ``[until_s - lookahead, until_s)``), advances every group's loop to
    ``until_s`` inclusive, and replies with a :class:`WindowDone`.
    """

    window: int
    until_s: float
    requests: "dict[int, np.ndarray]"


@dataclass(frozen=True)
class WindowDone:
    """Worker reached the window boundary; summaries taken at it."""

    worker: int
    window: int
    summaries: tuple[ShardSummary, ...]


@dataclass(frozen=True)
class Finalize:
    """No more arrivals: drain every group's loop and send the result."""


@dataclass(frozen=True)
class GroupOutcome:
    """One group's resolved outcomes as columns plus its telemetry.

    ``status``/``node``/``device``/``shed_reason`` are int32 codes into
    the matching tables (-1 encodes None); ``end_s`` uses NaN for None
    (a served request always has a finite completion time, so the
    encoding is lossless).
    """

    group: int
    request_id: np.ndarray
    status: np.ndarray
    node: np.ndarray
    device: np.ndarray
    end_s: np.ndarray
    shed_reason: np.ndarray
    status_table: tuple[str, ...]
    node_table: tuple[str, ...]
    device_table: tuple[str, ...]
    reason_table: tuple[str, ...]
    telemetry: dict
    utilization: dict

    def __len__(self) -> int:
        return int(self.request_id.size)

    def rows(self) -> "list[tuple]":
        """Decode back to outcome tuples (request order preserved)."""
        status_table = self.status_table
        node_table = self.node_table
        device_table = self.device_table
        reason_table = self.reason_table
        end_list = self.end_s.tolist()
        out = []
        for k, (rid, st, nd, dv, rs) in enumerate(
            zip(
                self.request_id.tolist(),
                self.status.tolist(),
                self.node.tolist(),
                self.device.tolist(),
                self.shed_reason.tolist(),
            )
        ):
            end = end_list[k]
            out.append((
                rid,
                status_table[st],
                node_table[nd] if nd >= 0 else None,
                device_table[dv] if dv >= 0 else None,
                None if end != end else end,   # NaN -> None
                reason_table[rs] if rs >= 0 else None,
            ))
        return out


@dataclass(frozen=True)
class WorkerResult:
    """Final message of a healthy worker: one outcome block per group."""

    worker: int
    outcomes: tuple[GroupOutcome, ...]


@dataclass(frozen=True)
class WorkerFailure:
    """A worker hit an exception; ``detail`` carries its traceback."""

    worker: int
    detail: str


def _intern(values: "list[str | None]") -> "tuple[np.ndarray, tuple[str, ...]]":
    table: list[str] = []
    index: dict[str, int] = {}
    codes = np.empty(len(values), dtype=np.int32)
    for i, value in enumerate(values):
        if value is None:
            codes[i] = -1
            continue
        code = index.get(value)
        if code is None:
            code = index[value] = len(table)
            table.append(value)
        codes[i] = code
    return codes, tuple(table)


def encode_outcomes(
    group: int, responses, telemetry: dict, utilization: dict
) -> GroupOutcome:
    """Pack resolved :class:`ClusterResponse`\\ s into one outcome block."""
    rids = np.empty(len(responses), dtype=np.int64)
    end_s = np.empty(len(responses), dtype=np.float64)
    statuses: "list[str | None]" = []
    nodes: "list[str | None]" = []
    devices: "list[str | None]" = []
    reasons: "list[str | None]" = []
    for i, response in enumerate(responses):
        rid, status, node, device, end, reason = response.outcome_tuple()
        rids[i] = rid
        end_s[i] = np.nan if end is None else end
        statuses.append(status)
        nodes.append(node)
        devices.append(device)
        reasons.append(reason)
    status_codes, status_table = _intern(statuses)
    node_codes, node_table = _intern(nodes)
    device_codes, device_table = _intern(devices)
    reason_codes, reason_table = _intern(reasons)
    return GroupOutcome(
        group=group,
        request_id=rids,
        status=status_codes,
        node=node_codes,
        device=device_codes,
        end_s=end_s,
        shed_reason=reason_codes,
        status_table=status_table,
        node_table=node_table,
        device_table=device_table,
        reason_table=reason_table,
        telemetry=telemetry,
        utilization=utilization,
    )
