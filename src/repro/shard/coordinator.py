"""The shard coordinator: conservative virtual-time sync across workers.

:func:`run_sharded` replays one trace over a fleet partitioned into
logical groups (see :class:`ShardPlan`) hosted by N worker processes.
Virtual time advances in conservative windows, Chandy–Misra–Bryant
style: the lookahead is the minimum front-tier routing delay — a request
routed at boundary ``T`` cannot arrive at a shard before ``T`` — so no
shard ever executes past ``min(peer clocks) + lookahead``, and within a
window every shard runs barrier-free at full speed.

Protocol per window ``k`` (dynamic front tiers)::

    workers --(WindowDone: ShardSummary per group @ T_k)--> coordinator
    coordinator: front_tier.begin_window(summaries)
                 choose() per arrival in [T_k, T_k + L)
    coordinator --(WindowAssign: trace indices, until=T_k + L)--> workers
    workers: inject arrivals, run(until=T_k + L), summarize

Static front tiers (``hash``, ``round-robin``) collapse the whole thing:
the assignment is a pure function of the request stream, so the entire
trace ships upfront and the shards run to completion independently.

Determinism: the unit of partitioning is the logical group, not the
process — group ``g`` gets the same RNG (child ``SeedSequence`` of the
global seed), the same traffic (the front tier never sees worker
boundaries) and its own event loop regardless of ``n_workers`` — so the
merged outcome digest is bit-identical across worker counts, and the
multiprocess path matches the inline (single-process, same protocol)
path bit for bit.

Crash safety: every blocking receive waits on the worker's pipe *and*
its process sentinel, so a worker dying mid-window surfaces as a
:class:`ShardWorkerError` naming the shard — never a hang.
"""

from __future__ import annotations

import bisect
import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import SchedulerError
from repro.cluster.balancers import (
    BALANCERS,
    FRONT_TIERS,
    ShardSummary,
    make_front_tier,
)
from repro.cluster.node import NodeSpec
from repro.rng import DEFAULT_SEED
from repro.shard.digest import digest_rows
from repro.shard.messages import (
    Finalize,
    Ready,
    StaticAssign,
    WindowAssign,
    WindowDone,
    WorkerFailure,
    WorkerResult,
)
from repro.shard.worker import GroupConfig, GroupRuntime, WorkerConfig, worker_main
from repro.workloads.requests import RequestTrace

__all__ = ["ShardWorkerError", "ShardPlan", "ShardResult", "run_sharded"]


class ShardWorkerError(SchedulerError):
    """A shard worker process failed (died, errored, or timed out)."""


@dataclass(frozen=True)
class ShardPlan:
    """How to partition a fleet across logical groups and processes.

    ``groups`` lists the node specs of each logical shard; ``n_workers``
    processes host them round-robin (group ``g`` lives on worker
    ``g % n_workers``).  Changing ``n_workers`` redistributes the same
    groups over more or fewer processes — it never changes what any group
    computes, which is the digest-invariance contract the tests pin down.

    ``lookahead_s`` is the conservative window width: the front tier's
    routing/network delay bound, and therefore both the summary staleness
    and the maximum any shard may run ahead of its peers.
    """

    groups: tuple[tuple[NodeSpec, ...], ...]
    n_workers: int = 1
    lookahead_s: float = 0.25
    front_tier: str = "least-loaded"
    balancer: str = "least-ect"
    seed: int = DEFAULT_SEED
    exact_latency: bool = False

    def __post_init__(self) -> None:
        if not self.groups:
            raise SchedulerError("a shard plan needs at least one group")
        names: list[str] = []
        for gi, group in enumerate(self.groups):
            if not group:
                raise SchedulerError(f"shard group {gi} has no nodes")
            names.extend(spec.name for spec in group)
        if len(set(names)) != len(names):
            raise SchedulerError(
                f"node names must be unique across all shard groups: {names}"
            )
        if not 1 <= self.n_workers <= len(self.groups):
            raise SchedulerError(
                f"n_workers must be in [1, n_groups={len(self.groups)}], "
                f"got {self.n_workers}"
            )
        if not self.lookahead_s > 0.0:
            raise SchedulerError(
                f"lookahead must be positive, got {self.lookahead_s}"
            )
        if self.front_tier not in FRONT_TIERS:
            known = ", ".join(sorted(FRONT_TIERS))
            raise SchedulerError(
                f"unknown front tier {self.front_tier!r}; known: {known}"
            )
        if self.balancer not in BALANCERS:
            known = ", ".join(sorted(BALANCERS))
            raise SchedulerError(
                f"unknown balancer {self.balancer!r}; known: {known}"
            )

    @property
    def n_groups(self) -> int:
        return len(self.groups)

    def group_configs(self) -> tuple[GroupConfig, ...]:
        """Per-group configs with seeds derived from the global seed.

        Children are spawned in group order from one ``SeedSequence`` —
        group ``g``'s stream depends only on ``(seed, g)``, never on the
        worker layout.
        """
        children = np.random.SeedSequence(self.seed).spawn(self.n_groups)
        return tuple(
            GroupConfig(
                group=g,
                node_specs=tuple(specs),
                balancer=self.balancer,
                seed_seq=children[g],
                exact_latency=self.exact_latency,
            )
            for g, specs in enumerate(self.groups)
        )

    def worker_groups(self, worker: int) -> tuple[int, ...]:
        """The logical groups hosted by ``worker`` (round-robin deal)."""
        return tuple(
            g for g in range(self.n_groups) if g % self.n_workers == worker
        )


@dataclass
class ShardResult:
    """Merged outcome of a sharded replay, sorted by request id.

    ``rows`` are the canonical outcome tuples
    ``(request_id, status, node, device, end_s, shed_reason)``;
    ``digest`` hashes them in id order with the same line format the
    single-process benches use.  ``wall_s`` covers the replay protocol
    (routing, windows, drain, result collection) — not worker startup or
    the merge itself, mirroring how the monolithic benches time
    ``serve_trace`` but not fleet construction.
    """

    n_requests: int
    n_groups: int
    n_workers: int
    n_windows: int
    wall_s: float
    rows: "list[tuple]" = field(repr=False)
    digest: str = ""
    group_telemetry: "dict[int, dict]" = field(default_factory=dict, repr=False)
    group_utilization: "dict[int, dict]" = field(default_factory=dict, repr=False)

    @property
    def n_served(self) -> int:
        return sum(1 for row in self.rows if row[1] == "ok")

    @property
    def n_shed(self) -> int:
        return sum(1 for row in self.rows if row[1] == "shed")

    @property
    def shed_rate(self) -> float:
        return self.n_shed / self.n_requests if self.n_requests else 0.0

    def latency_percentile(self, q: float, trace: RequestTrace) -> float:
        """q-th percentile of served end-to-end latency, in seconds."""
        arrivals = {r.request_id: r.effective_arrival_s for r in trace}
        samples = [
            row[4] - arrivals[row[0]] for row in self.rows if row[1] == "ok"
        ]
        if not samples:
            raise SchedulerError("no served requests in sharded result")
        return float(np.percentile(samples, q))


def _initial_summaries(n_groups: int) -> tuple[ShardSummary, ...]:
    """The trivially-known state of freshly-built shards at t=0."""
    return tuple(
        ShardSummary(
            group=g, virtual_time_s=0.0, outstanding=0,
            outstanding_samples=0, queued=0, served=0, shed=0,
        )
        for g in range(n_groups)
    )


class _InlineWorker:
    """In-process stand-in for a worker: same protocol, no fork.

    Used by ``inline=True`` (fast tests, hypothesis suites) and pinned
    against the multiprocess path by the equivalence tests — the two must
    produce identical digests.
    """

    def __init__(self, cfg: WorkerConfig):
        self._cfg = cfg
        self._runtimes = {g.group: GroupRuntime(g, cfg) for g in cfg.groups}
        self._replies: list = []

    def send(self, msg) -> None:
        cfg = self._cfg
        if isinstance(msg, Finalize):
            outcomes = tuple(rt.finalize() for rt in self._runtimes.values())
            self._replies.append(WorkerResult(cfg.worker, outcomes))
            return
        if isinstance(msg, StaticAssign):
            for group, indices in msg.requests.items():
                self._runtimes[group].feed(indices)
            return
        if cfg.fail_at_window is not None and msg.window >= cfg.fail_at_window:
            raise ShardWorkerError(
                f"shard worker {cfg.worker} hit its fail_at_window test hook"
            )
        for group, indices in msg.requests.items():
            self._runtimes[group].feed(indices)
        summaries = []
        for rt in self._runtimes.values():
            rt.run_window(msg.until_s)
            summaries.append(rt.summary())
        self._replies.append(WindowDone(cfg.worker, msg.window, tuple(summaries)))

    def recv(self, timeout_s: float):
        return self._replies.pop(0)

    def shutdown(self) -> None:
        return None


class _PipeWorker:
    """A forked worker process plus its coordinator-side pipe end."""

    def __init__(self, ctx, cfg: WorkerConfig, groups: tuple[int, ...]):
        from multiprocessing import connection  # noqa: F401  (import check)

        self.worker = cfg.worker
        self.groups = groups
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(
            target=worker_main,
            args=(child_conn, cfg),
            name=f"repro-shard-{cfg.worker}",
            daemon=True,
        )
        self.proc.start()
        child_conn.close()

    def _die(self, why: str) -> None:
        raise ShardWorkerError(
            f"shard worker {self.worker} (groups {list(self.groups)}) {why}"
        )

    def send(self, msg) -> None:
        try:
            self.conn.send(msg)
        except (BrokenPipeError, OSError):
            self._die(f"died before accepting {type(msg).__name__} "
                      f"(exit code {self.proc.exitcode})")

    def recv(self, timeout_s: float):
        from multiprocessing.connection import wait

        ready = wait([self.conn, self.proc.sentinel], timeout=timeout_s)
        if not ready:
            self._die(f"sent nothing for {timeout_s:.0f}s (deadlock guard)")
        if self.conn in ready:
            try:
                msg = self.conn.recv()
            except EOFError:
                self._die(f"died mid-window (exit code {self.proc.exitcode})")
            if isinstance(msg, WorkerFailure):
                self._die(f"failed:\n{msg.detail}")
            return msg
        # Only the sentinel fired: the process is gone with nothing queued.
        self.proc.join()
        self._die(f"died mid-window (exit code {self.proc.exitcode})")

    def shutdown(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        if self.proc.is_alive():
            self.proc.terminate()
        self.proc.join(timeout=10.0)


def _window_slices(trace: RequestTrace, lookahead_s: float):
    """Split trace indices into windows ``[k*L, (k+1)*L)`` by arrival."""
    arrivals = [r.arrival_s for r in trace]
    n_windows = int(trace.horizon_s / lookahead_s) + 1 if arrivals else 0
    slices = []
    lo = 0
    for k in range(n_windows):
        until = (k + 1) * lookahead_s
        hi = bisect.bisect_left(arrivals, until, lo)
        slices.append((until, lo, hi))
        lo = hi
    assert lo == len(arrivals), "window split lost arrivals"
    return slices


def run_sharded(
    plan: ShardPlan,
    trace: RequestTrace,
    predictors,
    model_specs: dict,
    slo: "dict | None" = None,
    default_slo=None,
    inline: bool = False,
    profile: "str | None" = None,
    timeout_s: float = 300.0,
    fail_at: "tuple[int, int] | None" = None,
) -> ShardResult:
    """Replay ``trace`` over the sharded fleet described by ``plan``.

    ``inline=True`` runs every group in this process through the same
    window protocol (no fork) — for tests and platforms without the
    ``fork`` start method.  ``profile`` makes each worker dump
    ``<profile>.shard<i>`` cProfile stats.  ``fail_at=(worker, window)``
    is the crash-safety test hook: that worker hard-exits at that window.

    Raises :class:`ShardWorkerError` — never hangs — when a worker dies,
    errors, or goes silent past ``timeout_s``.
    """
    front = make_front_tier(plan.front_tier, plan.n_groups)
    group_cfgs = plan.group_configs()
    workers: list = []

    def worker_cfg(w: int) -> WorkerConfig:
        return WorkerConfig(
            worker=w,
            groups=tuple(group_cfgs[g] for g in plan.worker_groups(w)),
            trace=trace,
            predictors=predictors,
            model_specs=model_specs,
            slo=slo,
            default_slo=default_slo,
            profile=profile,
            fail_at_window=(
                fail_at[1] if fail_at is not None and fail_at[0] == w else None
            ),
        )

    try:
        if inline:
            workers = [_InlineWorker(worker_cfg(w)) for w in range(plan.n_workers)]
        else:
            import multiprocessing as mp

            if "fork" not in mp.get_all_start_methods():
                raise SchedulerError(
                    "sharded replay needs the 'fork' start method (the trace "
                    "and predictors ship by copy-on-write); use inline=True "
                    "on this platform"
                )
            ctx = mp.get_context("fork")
            workers = [
                _PipeWorker(ctx, worker_cfg(w), plan.worker_groups(w))
                for w in range(plan.n_workers)
            ]
            for worker in workers:
                msg = worker.recv(timeout_s)
                assert isinstance(msg, Ready), msg

        requests = trace.requests
        t0 = time.perf_counter()

        if not front.uses_summaries:
            # Static assignment: route everything upfront, zero windows.
            per_group: "dict[int, list[int]]" = {
                g: [] for g in range(plan.n_groups)
            }
            for i, request in enumerate(requests):
                per_group[front.choose(request)].append(i)
            for w, worker in enumerate(workers):
                worker.send(StaticAssign(requests={
                    g: np.asarray(per_group[g], dtype=np.int64)
                    for g in plan.worker_groups(w)
                }))
            n_windows = 0
        else:
            slices = _window_slices(trace, plan.lookahead_s)
            n_windows = len(slices)
            summaries = _initial_summaries(plan.n_groups)
            for k, (until, lo, hi) in enumerate(slices):
                front.begin_window(summaries)
                per_group = {g: [] for g in range(plan.n_groups)}
                for i in range(lo, hi):
                    per_group[front.choose(requests[i])].append(i)
                for w, worker in enumerate(workers):
                    worker.send(WindowAssign(window=k, until_s=until, requests={
                        g: np.asarray(per_group[g], dtype=np.int64)
                        for g in plan.worker_groups(w)
                    }))
                by_group: "dict[int, ShardSummary]" = {}
                for worker in workers:
                    done = worker.recv(timeout_s)
                    assert isinstance(done, WindowDone) and done.window == k
                    for summary in done.summaries:
                        by_group[summary.group] = summary
                summaries = tuple(by_group[g] for g in range(plan.n_groups))

        for worker in workers:
            worker.send(Finalize())
        outcomes = []
        for worker in workers:
            result = worker.recv(timeout_s)
            assert isinstance(result, WorkerResult), result
            outcomes.extend(result.outcomes)
        wall_s = time.perf_counter() - t0
    finally:
        for worker in workers:
            worker.shutdown()

    rows: "list[tuple]" = []
    group_telemetry: "dict[int, dict]" = {}
    group_utilization: "dict[int, dict]" = {}
    for outcome in outcomes:
        rows.extend(outcome.rows())
        group_telemetry[outcome.group] = outcome.telemetry
        group_utilization[outcome.group] = outcome.utilization
    rows.sort(key=lambda row: row[0])
    if len(rows) != len(trace):
        raise SchedulerError(
            f"sharded merge resolved {len(rows)} outcomes for a "
            f"{len(trace)}-request trace"
        )
    for a, b in zip(rows, rows[1:]):
        if a[0] == b[0]:
            raise SchedulerError(f"request {a[0]} resolved on two shards")
    return ShardResult(
        n_requests=len(trace),
        n_groups=plan.n_groups,
        n_workers=plan.n_workers,
        n_windows=n_windows,
        wall_s=wall_s,
        rows=rows,
        digest=digest_rows(rows),
        group_telemetry=group_telemetry,
        group_utilization=group_utilization,
    )
