"""Outcome digests: the sharded determinism contract, serialized.

One canonical line per request —
``request_id,status,node,device,repr(end_s),shed_reason`` — hashed with
SHA-256.  ``repr`` of the virtual completion time keeps full float
precision, so two digests agree only when every request resolved
digit-for-digit identically.  The same line format is used by the
single-process million bench, a merged sharded replay, and the tests
that compare the two, which is precisely what lets the contract say
*bit-identical* instead of *statistically similar*.

Digest order matters: :func:`digest_responses` hashes in the order the
responses are given (trace order for a replay result), while a sharded
merge hashes in request-id order.  Traces built by
:meth:`~repro.workloads.mixed.MixedTrace.build` and
:func:`~repro.workloads.requests.make_trace` number requests positionally,
so the two orders coincide for every trace the benches replay.
"""

from __future__ import annotations

import hashlib

__all__ = ["outcome_line", "digest_rows", "digest_responses"]


def outcome_line(
    request_id: int,
    status: str,
    node: "str | None",
    device: "str | None",
    end_s: "float | None",
    shed_reason: "str | None",
) -> bytes:
    """The canonical serialization of one resolved request."""
    return (
        f"{request_id},{status},{node},{device},{end_s!r},{shed_reason}\n"
    ).encode()


def digest_rows(rows) -> str:
    """SHA-256 over outcome tuples, in the order given."""
    h = hashlib.sha256()
    update = h.update
    for row in rows:
        update(outcome_line(*row))
    return h.hexdigest()


def digest_responses(responses) -> str:
    """Digest resolved responses (cluster- or serving-level) as given.

    Accepts anything with an ``outcome_tuple()`` of the six canonical
    fields — :class:`~repro.cluster.router.ClusterResponse` directly;
    node-level :class:`~repro.serving.frontend.ServingResponse` lacks a
    node name, so digesting those goes through :func:`digest_rows` with
    the caller supplying one.
    """
    return digest_rows(r.outcome_tuple() for r in responses)
