"""Classification metrics: accuracy, confusion matrix, P/R/F1.

The paper evaluates the scheduler with accuracy (Table II) and — because
the device classes are imbalanced (~30/40/30, §V-B) — with weighted
F1/precision/recall (Table III).  Weighted averaging matches sklearn's
``average='weighted'``: per-class scores weighted by class support.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "accuracy_score",
    "confusion_matrix",
    "precision_score",
    "recall_score",
    "f1_score",
    "precision_recall_f1",
    "classification_report",
]


def _check_pair(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true).ravel()
    y_pred = np.asarray(y_pred).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"y_true has shape {y_true.shape} but y_pred has {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValueError("cannot score empty label arrays")
    return y_true, y_pred


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of exact label matches."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true, y_pred, n_classes: int | None = None) -> np.ndarray:
    """Counts[i, j] = samples with true class i predicted as class j."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    labels = np.union1d(np.unique(y_true), np.unique(y_pred))
    if not np.issubdtype(labels.dtype, np.integer):
        raise ValueError("confusion_matrix expects integer-encoded labels")
    k = int(labels.max()) + 1 if n_classes is None else int(n_classes)
    cm = np.zeros((k, k), dtype=np.int64)
    np.add.at(cm, (y_true, y_pred), 1)
    return cm


def _per_class_prf(y_true, y_pred) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    cm = confusion_matrix(y_true, y_pred)
    tp = np.diag(cm).astype(np.float64)
    support = cm.sum(axis=1).astype(np.float64)
    predicted = cm.sum(axis=0).astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        precision = np.where(predicted > 0, tp / predicted, 0.0)
        recall = np.where(support > 0, tp / support, 0.0)
        denom = precision + recall
        f1 = np.where(denom > 0, 2 * precision * recall / denom, 0.0)
    return precision, recall, f1, support


def _average(values: np.ndarray, support: np.ndarray, average: str) -> float:
    present = support > 0
    if average == "macro":
        return float(values[present].mean())
    if average == "weighted":
        return float(np.average(values[present], weights=support[present]))
    raise ValueError(f"average must be 'macro' or 'weighted', got {average!r}")


def precision_score(y_true, y_pred, average: str = "weighted") -> float:
    """Support-averaged precision."""
    p, _, _, s = _per_class_prf(y_true, y_pred)
    return _average(p, s, average)


def recall_score(y_true, y_pred, average: str = "weighted") -> float:
    """Support-averaged recall."""
    _, r, _, s = _per_class_prf(y_true, y_pred)
    return _average(r, s, average)


def f1_score(y_true, y_pred, average: str = "weighted") -> float:
    """Support-averaged F1 (the Table III headline metric)."""
    _, _, f, s = _per_class_prf(y_true, y_pred)
    return _average(f, s, average)


def precision_recall_f1(
    y_true, y_pred, average: str = "weighted"
) -> tuple[float, float, float]:
    """(precision, recall, f1) in one confusion-matrix pass."""
    p, r, f, s = _per_class_prf(y_true, y_pred)
    return _average(p, s, average), _average(r, s, average), _average(f, s, average)


def classification_report(
    y_true, y_pred, target_names: "list[str] | None" = None
) -> str:
    """Per-class P/R/F1/support table plus weighted averages (text).

    ``target_names`` maps class indices to labels — e.g. the device-class
    names of the scheduler dataset.
    """
    p, r, f, s = _per_class_prf(y_true, y_pred)
    k = len(s)
    if target_names is None:
        target_names = [str(i) for i in range(k)]
    if len(target_names) < k:
        raise ValueError(
            f"need >= {k} target names, got {len(target_names)}"
        )
    width = max(12, max(len(n) for n in target_names[:k]) + 2)
    header = f"{'':>{width}} {'precision':>10} {'recall':>10} {'f1':>10} {'support':>9}"
    lines = [header]
    for i in range(k):
        if s[i] == 0 and p[i] == 0:
            continue
        lines.append(
            f"{target_names[i]:>{width}} {p[i]:>10.3f} {r[i]:>10.3f} "
            f"{f[i]:>10.3f} {int(s[i]):>9d}"
        )
    wp, wr, wf = (
        _average(p, s, "weighted"),
        _average(r, s, "weighted"),
        _average(f, s, "weighted"),
    )
    lines.append(
        f"{'weighted avg':>{width}} {wp:>10.3f} {wr:>10.3f} {wf:>10.3f} "
        f"{int(s.sum()):>9d}"
    )
    return "\n".join(lines)
