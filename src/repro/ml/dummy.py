"""No-skill baseline classifiers (the Table II "Baseline" row).

The paper's baseline is uniform random device selection (41%).  These
estimators formalize it — plus the two other standard no-skill baselines —
so comparisons always have a floor in the same estimator API.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, check_fitted, check_xy
from repro.rng import ensure_rng

__all__ = ["DummyClassifier"]


class DummyClassifier(BaseEstimator):
    """Predicts without looking at the features.

    Strategies:

    * ``uniform`` — each class equally likely (the paper's baseline);
    * ``most_frequent`` — always the majority class;
    * ``stratified`` — classes drawn with their training frequencies.
    """

    def __init__(
        self,
        strategy: str = "uniform",
        random_state: "int | np.random.Generator | None" = None,
    ):
        if strategy not in ("uniform", "most_frequent", "stratified"):
            raise ValueError(
                f"strategy must be uniform/most_frequent/stratified, got {strategy!r}"
            )
        self.strategy = strategy
        self.random_state = random_state
        self.classes_: np.ndarray | None = None
        self.class_prior_: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "DummyClassifier":
        _, y = check_xy(x, y)
        y = y.astype(np.int64)
        counts = np.bincount(y)
        self.classes_ = np.flatnonzero(counts)
        self.class_prior_ = counts[self.classes_] / counts.sum()
        self._rng = ensure_rng(self.random_state)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        check_fitted(self, "classes_")
        x = np.asarray(x)
        n = x.shape[0]
        if self.strategy == "most_frequent":
            return np.full(n, self.classes_[np.argmax(self.class_prior_)])
        if self.strategy == "uniform":
            return self._rng.choice(self.classes_, size=n)
        return self._rng.choice(self.classes_, size=n, p=self.class_prior_)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        check_fitted(self, "classes_")
        n = np.asarray(x).shape[0]
        k = int(self.classes_.max()) + 1
        row = np.zeros(k)
        if self.strategy == "uniform":
            row[self.classes_] = 1.0 / len(self.classes_)
        elif self.strategy == "most_frequent":
            row[self.classes_[np.argmax(self.class_prior_)]] = 1.0
        else:
            row[self.classes_] = self.class_prior_
        return np.tile(row, (n, 1))
