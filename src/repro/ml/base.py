"""Estimator base class and cloning, following sklearn conventions."""

from __future__ import annotations

import copy
import inspect

import numpy as np

from repro.errors import NotFittedError

__all__ = ["BaseEstimator", "clone", "check_xy", "check_fitted"]


class BaseEstimator:
    """Base for all classifiers: parameter introspection + validation.

    Subclasses must store every constructor argument as an attribute of
    the same name (the sklearn contract), which makes :func:`clone` and
    grid search generic.
    """

    def get_params(self) -> dict:
        """Constructor parameters as a dict."""
        sig = inspect.signature(type(self).__init__)
        return {
            name: getattr(self, name)
            for name in sig.parameters
            if name not in ("self", "args", "kwargs")
        }

    def set_params(self, **params) -> "BaseEstimator":
        """Update constructor parameters in place; unknown names raise."""
        valid = self.get_params()
        for name, value in params.items():
            if name not in valid:
                raise ValueError(
                    f"{type(self).__name__} has no parameter {name!r}; "
                    f"valid: {sorted(valid)}"
                )
            setattr(self, name, value)
        return self

    def fit(self, x: np.ndarray, y: np.ndarray) -> "BaseEstimator":
        raise NotImplementedError

    def predict(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy on ``(x, y)``."""
        return float(np.mean(self.predict(x) == np.asarray(y)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        params = ", ".join(f"{k}={v!r}" for k, v in sorted(self.get_params().items()))
        return f"{type(self).__name__}({params})"


def clone(estimator: BaseEstimator) -> BaseEstimator:
    """Fresh unfitted copy with the same parameters."""
    params = {k: copy.deepcopy(v) for k, v in estimator.get_params().items()}
    return type(estimator)(**params)


def check_xy(x, y) -> tuple[np.ndarray, np.ndarray]:
    """Validate and normalize a training pair."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y)
    if x.ndim != 2:
        raise ValueError(f"x must be 2-D (n_samples, n_features), got {x.shape}")
    if y.ndim != 1:
        raise ValueError(f"y must be 1-D, got shape {y.shape}")
    if x.shape[0] != y.shape[0]:
        raise ValueError(f"x has {x.shape[0]} rows but y has {y.shape[0]}")
    if x.shape[0] == 0:
        raise ValueError("cannot fit on an empty dataset")
    return x, y


def check_fitted(estimator: BaseEstimator, attr: str) -> None:
    """Raise :class:`NotFittedError` unless ``attr`` has been set by fit."""
    if getattr(estimator, attr, None) is None:
        raise NotFittedError(
            f"{type(estimator).__name__} must be fitted before use"
        )
