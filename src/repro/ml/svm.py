"""Linear SVM classifier (Table II's SVM row).

One-vs-rest linear SVMs trained by subgradient descent on the L2-regularized
hinge loss (Pegasos-style deterministic full-batch variant).  The paper's
SVM is its slowest-training predictor (2947 s) with middling accuracy; a
margin classifier on these mixed-scale structural features is genuinely a
poor fit, which the evaluation reproduces.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, check_fitted, check_xy

__all__ = ["LinearSVC"]


class LinearSVC(BaseEstimator):
    """One-vs-rest linear SVM with hinge loss."""

    def __init__(self, c: float = 1.0, max_iter: int = 2000, lr: float = 0.05):
        if c <= 0.0 or max_iter < 1 or lr <= 0.0:
            raise ValueError("bad hyperparameters for LinearSVC")
        self.c = c
        self.max_iter = max_iter
        self.lr = lr
        self.coef_: np.ndarray | None = None
        self.intercept_: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LinearSVC":
        x, y = check_xy(x, y)
        y = y.astype(np.int64)
        n, d = x.shape
        k = int(y.max()) + 1
        w = np.zeros((d, k))
        b = np.zeros(k)
        # Targets in {-1, +1} per one-vs-rest problem.
        targets = np.full((n, k), -1.0)
        targets[np.arange(n), y] = 1.0
        lam = 1.0 / (self.c * n)
        for it in range(1, self.max_iter + 1):
            margins = targets * (x @ w + b)
            active = margins < 1.0  # violating samples per binary problem
            # Subgradient of mean hinge + L2.
            gw = lam * w - (x.T @ (targets * active)) / n
            gb = -(targets * active).sum(axis=0) / n
            step = self.lr / np.sqrt(it)  # diminishing step
            w -= step * gw
            b -= step * gb
        self.coef_ = w
        self.intercept_ = b
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        check_fitted(self, "coef_")
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.coef_.shape[0]:
            raise ValueError(
                f"expected (n, {self.coef_.shape[0]}) input, got shape {x.shape}"
            )
        return x @ self.coef_ + self.intercept_

    def predict(self, x: np.ndarray) -> np.ndarray:
        return np.argmax(self.decision_function(x), axis=1)
