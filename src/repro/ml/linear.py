"""Linear models: least-squares classification and logistic regression.

Table II lists a "Linear Regression" predictor: a least-squares fit used
as a classifier.  :class:`LinearRegressionClassifier` is that model —
one-hot least squares solved in closed form (scale-robust, hence its
decent 77.94% in the paper despite raw features), predictions by argmax
over the fitted targets.  :class:`LogisticRegression` is the proper
maximum-likelihood linear classifier, provided for completeness and used
in the scaling ablation.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, check_fitted, check_xy
from repro.nn.activations import softmax

__all__ = ["LinearRegressionClassifier", "LogisticRegression"]


class LinearRegressionClassifier(BaseEstimator):
    """One-hot least squares as a classifier (the paper's Table II row).

    Fits ``W`` minimizing ``||X W - onehot(y)||^2`` via ``lstsq`` (closed
    form — no learning rate, so raw-scale features are handled exactly),
    then predicts ``argmax(X W)``.
    """

    def __init__(self, l2: float = 1e-8):
        if l2 < 0.0:
            raise ValueError(f"l2 must be >= 0, got {l2}")
        self.l2 = l2
        self.coef_: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LinearRegressionClassifier":
        x, y = check_xy(x, y)
        y = y.astype(np.int64)
        n, d = x.shape
        k = int(y.max()) + 1
        xb = np.hstack([x, np.ones((n, 1))])
        onehot = np.zeros((n, k))
        onehot[np.arange(n), y] = 1.0
        # Ridge-regularized normal equations keep lstsq well-posed even
        # with duplicated feature rows.
        gram = xb.T @ xb + self.l2 * np.eye(d + 1)
        self.coef_ = np.linalg.solve(gram, xb.T @ onehot)
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        check_fitted(self, "coef_")
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.coef_.shape[0] - 1:
            raise ValueError(
                f"expected (n, {self.coef_.shape[0] - 1}) input, got shape {x.shape}"
            )
        xb = np.hstack([x, np.ones((x.shape[0], 1))])
        return xb @ self.coef_

    def predict(self, x: np.ndarray) -> np.ndarray:
        return np.argmax(self.decision_function(x), axis=1)


class LogisticRegression(BaseEstimator):
    """Softmax regression trained by batch gradient descent."""

    def __init__(
        self,
        lr: float = 0.1,
        max_iter: int = 500,
        l2: float = 1e-4,
        tol: float = 1e-6,
    ):
        if lr <= 0.0 or max_iter < 1 or l2 < 0.0 or tol < 0.0:
            raise ValueError("bad hyperparameters for LogisticRegression")
        self.lr = lr
        self.max_iter = max_iter
        self.l2 = l2
        self.tol = tol
        self.coef_: np.ndarray | None = None
        self.intercept_: np.ndarray | None = None
        self.n_iter_: int = 0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        x, y = check_xy(x, y)
        y = y.astype(np.int64)
        n, d = x.shape
        k = int(y.max()) + 1
        w = np.zeros((d, k))
        b = np.zeros(k)
        onehot = np.zeros((n, k))
        onehot[np.arange(n), y] = 1.0
        prev_loss = np.inf
        for i in range(self.max_iter):
            p = softmax(x @ w + b)
            grad_logits = (p - onehot) / n
            gw = x.T @ grad_logits + self.l2 * w
            gb = grad_logits.sum(axis=0)
            w -= self.lr * gw
            b -= self.lr * gb
            loss = float(
                -np.mean(np.log(np.clip(p[np.arange(n), y], 1e-12, None)))
                + 0.5 * self.l2 * np.sum(w * w)
            )
            if abs(prev_loss - loss) < self.tol:
                self.n_iter_ = i + 1
                break
            prev_loss = loss
        else:
            self.n_iter_ = self.max_iter
        self.coef_ = w
        self.intercept_ = b
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        check_fitted(self, "coef_")
        x = np.asarray(x, dtype=np.float64)
        return x @ self.coef_ + self.intercept_

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        return softmax(self.decision_function(x))

    def predict(self, x: np.ndarray) -> np.ndarray:
        return np.argmax(self.decision_function(x), axis=1)
