"""From-scratch classical ML: the estimators behind the scheduler (§V-VI).

The paper trains its device-selection model with scikit-learn; this
subpackage reimplements everything that evaluation needs on bare numpy:

* estimators — decision tree, random forest, k-NN, (multinomial) logistic
  regression (the paper's "Linear Regression" predictor), linear SVM, and
  a small feed-forward network classifier;
* metrics — accuracy, confusion matrix, precision/recall/F1;
* model selection — stratified k-fold, cross-validation, grid search and
  the stratified *nested* cross-validation of §V-C;
* preprocessing — standard scaling and label encoding.

The estimator API follows the sklearn conventions (``fit`` / ``predict`` /
``get_params`` / ``set_params``) so the evaluation harness reads like the
paper's methodology.
"""

from repro.ml.base import BaseEstimator, clone
from repro.ml.dummy import DummyClassifier
from repro.ml.flatten import FlatForest, FlatTree
from repro.ml.forest import RandomForestClassifier
from repro.ml.knn import KNeighborsClassifier
from repro.ml.linear import LinearRegressionClassifier, LogisticRegression
from repro.ml.metrics import (
    accuracy_score,
    confusion_matrix,
    f1_score,
    precision_recall_f1,
    precision_score,
    recall_score,
)
from repro.ml.model_selection import (
    GridSearchCV,
    StratifiedKFold,
    cross_val_score,
    nested_cross_validation,
    train_test_split,
)
from repro.ml.nnclf import MLPClassifier
from repro.ml.preprocessing import LabelEncoder, StandardScaler
from repro.ml.svm import LinearSVC
from repro.ml.tree import DecisionTreeClassifier

__all__ = [
    "BaseEstimator",
    "clone",
    "DecisionTreeClassifier",
    "DummyClassifier",
    "FlatForest",
    "FlatTree",
    "RandomForestClassifier",
    "KNeighborsClassifier",
    "LinearRegressionClassifier",
    "LogisticRegression",
    "LinearSVC",
    "MLPClassifier",
    "accuracy_score",
    "confusion_matrix",
    "precision_score",
    "recall_score",
    "f1_score",
    "precision_recall_f1",
    "StratifiedKFold",
    "cross_val_score",
    "GridSearchCV",
    "nested_cross_validation",
    "train_test_split",
    "StandardScaler",
    "LabelEncoder",
]
