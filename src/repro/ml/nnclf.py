"""Feed-forward network classifier (Table II's FFNN row).

A thin estimator adapter over the :mod:`repro.nn` training substrate — the
same layers the workload models use, here as a scheduler predictor.  The
paper found this model underwhelming for the scheduling problem (52.62%);
small tabular datasets with ~8 structural features are simply not where
multilayer perceptrons shine.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, check_fitted, check_xy
from repro.nn.builders import FFNNSpec, build_model
from repro.nn.train import TrainConfig, train_model
from repro.rng import ensure_rng

__all__ = ["MLPClassifier"]


class MLPClassifier(BaseEstimator):
    """MLP with relu hidden layers trained by SGD + momentum."""

    def __init__(
        self,
        hidden_layers: tuple[int, ...] = (32, 32),
        epochs: int = 50,
        batch_size: int = 32,
        lr: float = 0.01,
        momentum: float = 0.9,
        random_state: "int | np.random.Generator | None" = None,
    ):
        self.hidden_layers = tuple(hidden_layers)
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.momentum = momentum
        self.random_state = random_state
        self.model_ = None
        self.n_classes_: int = 0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "MLPClassifier":
        x, y = check_xy(x, y)
        y = y.astype(np.int64)
        self.n_classes_ = int(y.max()) + 1
        rng = ensure_rng(self.random_state)
        spec = FFNNSpec(
            name="mlp-classifier",
            input_shape=(x.shape[1],),
            n_classes=max(self.n_classes_, 2),
            hidden_layers=self.hidden_layers,
        )
        self.model_ = build_model(spec, rng=rng)
        cfg = TrainConfig(
            epochs=self.epochs,
            batch_size=self.batch_size,
            lr=self.lr,
            momentum=self.momentum,
        )
        train_model(self.model_, x.astype(np.float32), y, cfg, rng=rng)
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        check_fitted(self, "model_")
        return self.model_.predict_proba(np.asarray(x, dtype=np.float32))

    def predict(self, x: np.ndarray) -> np.ndarray:
        check_fitted(self, "model_")
        return self.model_.predict(np.asarray(x, dtype=np.float32))
