"""k-nearest-neighbours classifier (Table II's k-NN row).

Brute-force Euclidean k-NN, vectorized: pairwise distances via the
``|a-b|^2 = |a|^2 - 2ab + |b|^2`` expansion (one GEMM), block-processed so
memory stays bounded on large query sets.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, check_fitted, check_xy

__all__ = ["KNeighborsClassifier"]

_BLOCK = 2048  # query rows per distance block


class KNeighborsClassifier(BaseEstimator):
    """Majority-vote k-NN with optional inverse-distance weighting."""

    def __init__(self, n_neighbors: int = 5, weights: str = "uniform"):
        if n_neighbors < 1:
            raise ValueError(f"n_neighbors must be >= 1, got {n_neighbors}")
        if weights not in ("uniform", "distance"):
            raise ValueError(f"weights must be 'uniform' or 'distance', got {weights!r}")
        self.n_neighbors = n_neighbors
        self.weights = weights
        self.x_: np.ndarray | None = None
        self.y_: np.ndarray | None = None
        self.n_classes_: int = 0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "KNeighborsClassifier":
        x, y = check_xy(x, y)
        if self.n_neighbors > x.shape[0]:
            raise ValueError(
                f"n_neighbors={self.n_neighbors} > n_samples={x.shape[0]}"
            )
        self.x_ = x
        self.y_ = y.astype(np.int64)
        self.n_classes_ = int(self.y_.max()) + 1
        self._sq_norms = np.einsum("ij,ij->i", x, x)
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        check_fitted(self, "x_")
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.x_.shape[1]:
            raise ValueError(
                f"expected (n, {self.x_.shape[1]}) input, got shape {x.shape}"
            )
        k = self.n_neighbors
        out = np.empty((x.shape[0], self.n_classes_))
        for start in range(0, x.shape[0], _BLOCK):
            q = x[start : start + _BLOCK]
            d2 = (
                np.einsum("ij,ij->i", q, q)[:, None]
                - 2.0 * (q @ self.x_.T)
                + self._sq_norms[None, :]
            )
            np.maximum(d2, 0.0, out=d2)  # clamp fp cancellation
            nn = np.argpartition(d2, k - 1, axis=1)[:, :k]
            labels = self.y_[nn]
            if self.weights == "uniform":
                w = np.ones_like(labels, dtype=np.float64)
            else:
                d = np.sqrt(np.take_along_axis(d2, nn, axis=1))
                w = 1.0 / np.maximum(d, 1e-12)
            votes = np.zeros((q.shape[0], self.n_classes_))
            rows = np.repeat(np.arange(q.shape[0]), k)
            np.add.at(votes, (rows, labels.ravel()), w.ravel())
            out[start : start + _BLOCK] = votes / votes.sum(axis=1, keepdims=True)
        return out

    def predict(self, x: np.ndarray) -> np.ndarray:
        return np.argmax(self.predict_proba(x), axis=1)
