"""Random-forest classifier — the paper's chosen scheduler model (§V-A).

Bootstrap-aggregated CART trees with per-node random feature subsampling
(``sqrt`` by default).  Prediction averages per-tree class distributions
(soft voting), which is also what breaks ties smoothly on the imbalanced
scheduler dataset.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, check_fitted, check_xy
from repro.ml.tree import DecisionTreeClassifier
from repro.rng import ensure_rng, spawn

__all__ = ["RandomForestClassifier"]


class RandomForestClassifier(BaseEstimator):
    """Bagged decision trees with feature subsampling.

    Parameters mirror Table I: ``n_estimators``, ``max_depth``,
    ``criterion`` and ``min_samples_leaf``; ``max_features`` defaults to
    'sqrt' as in sklearn.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        criterion: str = "gini",
        max_depth: int | None = None,
        min_samples_leaf: int = 1,
        max_features: "int | str | None" = "sqrt",
        bootstrap: bool = True,
        random_state: "int | np.random.Generator | None" = None,
    ):
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        self.n_estimators = n_estimators
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state
        self.trees_: list[DecisionTreeClassifier] | None = None
        self.n_classes_: int = 0
        self._flat = None  # lazily built FlatForest, invalidated by fit()

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        x, y = check_xy(x, y)
        y = y.astype(np.int64)
        self.n_classes_ = int(y.max()) + 1
        rng = ensure_rng(self.random_state)
        tree_rngs = spawn(rng, self.n_estimators)
        n = x.shape[0]
        self.trees_ = []
        for t_rng in tree_rngs:
            if self.bootstrap:
                idx = t_rng.integers(0, n, size=n)
            else:
                idx = np.arange(n)
            tree = DecisionTreeClassifier(
                criterion=self.criterion,
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=t_rng,
            )
            tree.n_classes_ = self.n_classes_  # keep proba width uniform
            xb, yb = x[idx], y[idx]
            tree.fit(xb, yb)
            # fit() recomputes n_classes_ from the bootstrap labels; restore
            # the forest-wide width so probabilities stack.
            if tree.n_classes_ != self.n_classes_:
                tree = self._refit_padded(tree, xb, yb)
            self.trees_.append(tree)
        self._flat = None
        return self

    def _refit_padded(self, tree, xb, yb) -> DecisionTreeClassifier:
        """Refit a tree whose bootstrap missed the top class, padding the
        label set with one synthetic no-op so proba widths match."""
        # Append a single sample of the max class drawn from the data it
        # would least distort: duplicate the first sample's features.
        pad_x = np.vstack([xb, xb[:1]])
        pad_y = np.append(yb, self.n_classes_ - 1)
        tree.fit(pad_x, pad_y)
        return tree

    def flatten(self):
        """All fitted trees as one :class:`~repro.ml.flatten.FlatForest`
        arena (built once per fit, cached)."""
        check_fitted(self, "trees_")
        if self._flat is None:
            from repro.ml.flatten import FlatForest

            self._flat = FlatForest.from_trees(self.trees_)
        return self._flat

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Soft-voted distributions via the flat-arena fast path.

        Every tree routes the whole batch simultaneously; accumulation
        runs in tree order so the result is bit-identical to
        :meth:`predict_proba_recursive`.
        """
        check_fitted(self, "trees_")
        x = np.asarray(x, dtype=np.float64)
        flat = self.flatten()
        if x.ndim != 2 or x.shape[1] != flat.n_features:
            raise ValueError(
                f"expected (n, {flat.n_features}) input, got shape {x.shape}"
            )
        return flat.predict_proba(x)

    def predict_proba_recursive(self, x: np.ndarray) -> np.ndarray:
        """Reference path: average per-tree node-graph walks (slow)."""
        check_fitted(self, "trees_")
        proba = self.trees_[0].predict_proba_recursive(x)
        for tree in self.trees_[1:]:
            proba = proba + tree.predict_proba_recursive(x)
        return proba / len(self.trees_)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return np.argmax(self.predict_proba(x), axis=1)

    @property
    def feature_importances_(self) -> np.ndarray:
        """Forest-averaged mean decrease in impurity, normalized."""
        check_fitted(self, "trees_")
        stacked = np.vstack([t.feature_importances_ for t in self.trees_])
        mean = stacked.mean(axis=0)
        total = mean.sum()
        return mean / total if total > 0 else mean
