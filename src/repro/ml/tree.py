"""CART decision-tree classifier (Table II's second-best predictor).

Standard greedy axis-aligned splitting with gini or entropy impurity
(Table I's ``criterion`` hyperparameter), ``max_depth`` and
``min_samples_leaf`` controls, and ``max_features`` random feature
subsampling (used by the random forest).

The split search is fully vectorized per node: one argsort per candidate
feature, class-count prefix sums, and an impurity evaluation across all
thresholds at once — no Python loop over samples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.base import BaseEstimator, check_fitted, check_xy
from repro.rng import ensure_rng

__all__ = ["DecisionTreeClassifier"]


@dataclass
class _Node:
    """One tree node; leaves carry a class distribution."""

    proba: np.ndarray            # class distribution at this node
    feature: int = -1            # split feature (-1 = leaf)
    threshold: float = 0.0       # go left iff x[feature] <= threshold
    left: "._Node | None" = None
    right: "._Node | None" = None

    @property
    def is_leaf(self) -> bool:
        """Whether this node has no split."""
        return self.feature < 0


def _impurity(counts: np.ndarray, criterion: str) -> np.ndarray:
    """Impurity of class-count rows; ``counts`` is (..., n_classes)."""
    totals = counts.sum(axis=-1, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        p = np.where(totals > 0, counts / totals, 0.0)
    if criterion == "gini":
        return 1.0 - np.sum(p * p, axis=-1)
    if criterion == "entropy":
        logs = np.zeros_like(p)
        np.log2(p, where=p > 0, out=logs)
        return -np.sum(p * logs, axis=-1)
    raise ValueError(f"criterion must be 'gini' or 'entropy', got {criterion!r}")


class DecisionTreeClassifier(BaseEstimator):
    """Greedy CART classifier.

    Parameters mirror Table I: ``criterion`` ('gini'/'entropy'),
    ``max_depth`` and ``min_samples_leaf``.  ``max_features`` ('sqrt', an
    int, or None for all) enables the forest's feature subsampling;
    ``random_state`` seeds it.
    """

    def __init__(
        self,
        criterion: str = "gini",
        max_depth: int | None = None,
        min_samples_leaf: int = 1,
        max_features: "int | str | None" = None,
        random_state: "int | np.random.Generator | None" = None,
    ):
        if criterion not in ("gini", "entropy"):
            raise ValueError(f"criterion must be 'gini' or 'entropy', got {criterion!r}")
        if max_depth is not None and max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        if min_samples_leaf < 1:
            raise ValueError(f"min_samples_leaf must be >= 1, got {min_samples_leaf}")
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self.root_: _Node | None = None
        self.n_classes_: int = 0
        self.n_features_: int = 0
        self._importance_raw: np.ndarray | None = None
        self._n_fit_samples: int = 0
        self._flat = None  # lazily built FlatTree, invalidated by fit()

    # -- fitting ---------------------------------------------------------

    def fit(self, x: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        x, y = check_xy(x, y)
        y = y.astype(np.int64)
        if y.min() < 0:
            raise ValueError("labels must be non-negative integers")
        self.n_classes_ = int(y.max()) + 1
        self.n_features_ = x.shape[1]
        self._importance_raw = np.zeros(self.n_features_)
        self._n_fit_samples = y.size
        rng = ensure_rng(self.random_state)
        self.root_ = self._grow(x, y, depth=0, rng=rng)
        self._flat = None
        return self

    def _n_candidate_features(self) -> int:
        if self.max_features is None:
            return self.n_features_
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(self.n_features_)))
        k = int(self.max_features)
        if not (1 <= k <= self.n_features_):
            raise ValueError(
                f"max_features must be in [1, {self.n_features_}], got {k}"
            )
        return k

    def _grow(self, x: np.ndarray, y: np.ndarray, depth: int, rng) -> _Node:
        counts = np.bincount(y, minlength=self.n_classes_).astype(np.float64)
        node = _Node(proba=counts / counts.sum())
        if (
            (self.max_depth is not None and depth >= self.max_depth)
            or y.size < 2 * self.min_samples_leaf
            or counts.max() == counts.sum()  # pure node
        ):
            return node

        split = self._best_split(x, y, rng)
        if split is None:
            return node
        feature, threshold = split
        mask = x[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        # Mean-decrease-in-impurity accounting for feature_importances_.
        parent_imp = float(
            _impurity(counts[None, :], self.criterion)[0]
        )
        left_counts = np.bincount(y[mask], minlength=self.n_classes_).astype(float)
        right_counts = counts - left_counts
        n = float(y.size)
        child_imp = (
            left_counts.sum() * float(_impurity(left_counts[None, :], self.criterion)[0])
            + right_counts.sum() * float(_impurity(right_counts[None, :], self.criterion)[0])
        ) / n
        self._importance_raw[feature] += (n / self._n_fit_samples) * (
            parent_imp - child_imp
        )
        node.left = self._grow(x[mask], y[mask], depth + 1, rng)
        node.right = self._grow(x[~mask], y[~mask], depth + 1, rng)
        return node

    def _best_split(self, x, y, rng) -> "tuple[int, float] | None":
        n = y.size
        k = self._n_candidate_features()
        if k < self.n_features_:
            features = rng.choice(self.n_features_, size=k, replace=False)
        else:
            features = np.arange(self.n_features_)

        onehot = np.zeros((n, self.n_classes_))
        onehot[np.arange(n), y] = 1.0

        best = None
        best_score = np.inf
        min_leaf = self.min_samples_leaf
        for f in features:
            order = np.argsort(x[:, f], kind="stable")
            xs = x[order, f]
            # Prefix class counts after each potential left block.
            left_counts = np.cumsum(onehot[order], axis=0)
            total = left_counts[-1]
            # Candidate split after position i (left = [0..i]); valid iff
            # both sides satisfy min_samples_leaf and the value changes.
            sizes_left = np.arange(1, n + 1, dtype=np.float64)
            valid = (
                (sizes_left >= min_leaf)
                & (n - sizes_left >= min_leaf)
                & np.append(xs[:-1] < xs[1:], False)
            )
            if not np.any(valid):
                continue
            right_counts = total[None, :] - left_counts
            imp_left = _impurity(left_counts, self.criterion)
            imp_right = _impurity(right_counts, self.criterion)
            weighted = (sizes_left * imp_left + (n - sizes_left) * imp_right) / n
            weighted = np.where(valid, weighted, np.inf)
            i = int(np.argmin(weighted))
            if weighted[i] < best_score - 1e-12:
                best_score = weighted[i]
                best = (int(f), float(0.5 * (xs[i] + xs[i + 1])))

        parent_imp = float(_impurity(onehot.sum(axis=0)[None, :], self.criterion)[0])
        if best is None or best_score >= parent_imp - 1e-12:
            return None  # no informative split
        return best

    # -- inference ---------------------------------------------------------

    def _check_x(self, x: np.ndarray) -> np.ndarray:
        check_fitted(self, "root_")
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.n_features_:
            raise ValueError(
                f"expected (n, {self.n_features_}) input, got shape {x.shape}"
            )
        return x

    def flatten(self):
        """The fitted tree as a :class:`~repro.ml.flatten.FlatTree`
        (built once per fit, cached)."""
        check_fitted(self, "root_")
        if self._flat is None:
            from repro.ml.flatten import FlatTree

            self._flat = FlatTree.from_tree(self)
        return self._flat

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Batched class distributions via the flat-array fast path.

        Bit-identical to :meth:`predict_proba_recursive` (asserted by
        ``tests/property``): the same comparisons route every sample to
        the same leaf, whose stored distribution is copied out.
        """
        return self.flatten().predict_proba(self._check_x(x))

    def predict_proba_recursive(self, x: np.ndarray) -> np.ndarray:
        """Reference path: walk the Python ``_Node`` graph.

        Kept for equivalence testing against the flat path — one
        interpreter iteration per node makes it the slow baseline the
        wall-clock harness measures against.
        """
        x = self._check_x(x)
        out = np.empty((x.shape[0], self.n_classes_))
        # Iterative routing: partition index sets level by level (no Python
        # loop over individual samples).
        stack = [(self.root_, np.arange(x.shape[0]))]
        while stack:
            node, idx = stack.pop()
            if idx.size == 0:
                continue
            if node.is_leaf:
                out[idx] = node.proba
                continue
            mask = x[idx, node.feature] <= node.threshold
            stack.append((node.left, idx[mask]))
            stack.append((node.right, idx[~mask]))
        return out

    def predict(self, x: np.ndarray) -> np.ndarray:
        return np.argmax(self.predict_proba(x), axis=1)

    # -- introspection ---------------------------------------------------------

    def export_text(self, feature_names: "list[str] | None" = None,
                    class_names: "list[str] | None" = None) -> str:
        """Human-readable tree dump (the interpretability the paper trades
        away when it picks the forest over the single tree).

        One line per node: ``feature <= threshold`` for splits, the class
        distribution for leaves.
        """
        check_fitted(self, "root_")
        if feature_names is None:
            feature_names = [f"x[{i}]" for i in range(self.n_features_)]
        if len(feature_names) < self.n_features_:
            raise ValueError(
                f"need >= {self.n_features_} feature names, got {len(feature_names)}"
            )
        if class_names is None:
            class_names = [str(i) for i in range(self.n_classes_)]

        lines: list[str] = []

        def walk(node: _Node, depth: int) -> None:
            pad = "|   " * depth
            if node.is_leaf:
                winner = class_names[int(np.argmax(node.proba))]
                dist = ", ".join(f"{p:.2f}" for p in node.proba)
                lines.append(f"{pad}|-- class: {winner}  [{dist}]")
                return
            name = feature_names[node.feature]
            lines.append(f"{pad}|-- {name} <= {node.threshold:g}")
            walk(node.left, depth + 1)
            lines.append(f"{pad}|-- {name} >  {node.threshold:g}")
            walk(node.right, depth + 1)

        walk(self.root_, 0)
        return "\n".join(lines)

    @property
    def feature_importances_(self) -> np.ndarray:
        """Mean decrease in impurity per feature, normalized to sum to 1.

        The paper's §V-B claim — "the most important parameters is the
        samples size and the state of the GPU" — is checkable directly
        from these on the scheduler dataset.
        """
        check_fitted(self, "root_")
        total = self._importance_raw.sum()
        if total <= 0.0:
            return np.zeros_like(self._importance_raw)
        return self._importance_raw / total

    @property
    def depth_(self) -> int:
        """Realized depth of the fitted tree."""
        check_fitted(self, "root_")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self.root_)

    @property
    def n_leaves_(self) -> int:
        """Leaf count of the fitted tree."""
        check_fitted(self, "root_")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 1
            return walk(node.left) + walk(node.right)

        return walk(self.root_)
