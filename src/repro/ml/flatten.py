"""Flattened tree/forest inference: the scheduler's decision fast path.

The paper's Table I argues the random forest wins partly because its
per-request decision cost is negligible next to dispatch.  The reference
implementation walks Python ``_Node`` objects — one interpreter iteration
per tree node — which dominates wall-clock once a serving flood asks for
thousands of placements per virtual second.

:class:`FlatTree` flattens a fitted tree into contiguous numpy arrays
(split feature, threshold, packed child indices, per-node class
distribution) and routes a whole batch iteratively: every step advances
*all* samples one level at once, so the Python loop count is the tree
depth, not the node count.  :class:`FlatForest` concatenates every tree
of a forest into one arena and steps all (tree, sample) lanes
simultaneously; per-tree probabilities are then accumulated in tree order
so results are bit-identical to the reference sequential path.

Leaves are stored self-looping (both children point back at the leaf,
behind an always-false "go right" comparison against ``+inf``), so a
lane that lands on a leaf stays put with no per-step bookkeeping.  When
most lanes have finished (leaf paths are much shorter than the depth
cap) the live ones are compacted so later levels gather only what is
still routing; large batches are additionally processed in ~1k-sample
chunks to keep the gather working set cache-resident.
"""

from __future__ import annotations

import numpy as np

__all__ = ["FlatTree", "FlatForest"]

#: Samples routed per chunk; keeps the (lanes x chunk) gather buffers in
#: cache for big batches without adding overhead for small ones.
_CHUNK = 1024

#: Compact the live lanes once fewer than this fraction are still routing.
_COMPACT_FRAC = 0.7


def _flatten_into(root, feature, threshold, left, right, proba) -> int:
    """Append ``root``'s subtree to the builder lists in preorder.

    Child links are absolute indices into the shared lists so several
    trees can occupy one arena.  Returns the subtree depth.  Iterative,
    so arbitrarily deep trees cannot hit the recursion limit.
    """
    max_depth = 0
    stack = [(root, -1, False, 0)]  # (node, parent index, is_right_child, depth)
    while stack:
        node, parent, is_right, depth = stack.pop()
        i = len(feature)
        if parent >= 0:
            (right if is_right else left)[parent] = i
        if depth > max_depth:
            max_depth = depth
        feature.append(node.feature)
        threshold.append(node.threshold)
        left.append(-1)
        right.append(-1)
        proba.append(node.proba)
        if node.feature >= 0:
            # Push right first so the left child pops (and lands) first.
            stack.append((node.right, i, True, depth + 1))
            stack.append((node.left, i, False, depth + 1))
    return max_depth


class _FlatBase:
    """Shared arena storage plus the sentinel-leaf routing kernel."""

    __slots__ = ("feature", "threshold", "left", "right", "proba",
                 "n_features", "max_depth", "_sfeat", "_sthr", "_children")

    def __init__(self, feature, threshold, left, right, proba,
                 n_features: int, max_depth: int):
        self.feature = feature        # split feature; -1 marks a leaf
        self.threshold = threshold    # go left iff x[feature] <= threshold
        self.left = left              # child arena indices (-1 at leaves)
        self.right = right
        self.proba = proba            # per-node class distribution
        self.n_features = int(n_features)
        self.max_depth = int(max_depth)
        # Routing copies: leaves self-loop behind an always-false "go
        # right" test, and both children interleave into one array so a
        # step needs a single gather at index 2*node + went_right.
        leaf = feature < 0
        self_idx = np.arange(feature.shape[0], dtype=np.intp)
        self._sfeat = np.where(leaf, 0, feature).astype(np.intp)
        self._sthr = np.where(leaf, np.inf, threshold)
        children = np.empty(2 * feature.shape[0], dtype=np.intp)
        children[0::2] = np.where(leaf, self_idx, left)
        children[1::2] = np.where(leaf, self_idx, right)
        self._children = children

    @property
    def n_nodes(self) -> int:
        return int(self.feature.shape[0])

    def _route(self, xflat: np.ndarray, w_col: np.ndarray,
               w_idx: np.ndarray) -> np.ndarray:
        """Advance every lane of ``w_idx`` to its leaf, one level per step.

        ``xflat`` is the row-major sample block, ``w_col`` each lane's row
        offset into it (both 1-d, one entry per lane).  A leaf's sentinel
        threshold is ``+inf``, so the threshold gather doubles as the
        liveness test: once enough lanes have finished, the live ones are
        compacted and the finished leaf indices scattered to ``out``, so
        deep levels only pay for the paths that are actually that deep.
        """
        sfeat, sthr, children = self._sfeat, self._sthr, self._children
        lanes = w_idx.size
        out = np.empty(lanes, dtype=np.intp)
        positions = None          # out-positions of the live lanes (None = all)
        for _ in range(self.max_depth):
            tv = sthr[w_idx]
            active = tv != np.inf
            n_active = int(active.sum())
            if n_active == 0:
                break
            if n_active < _COMPACT_FRAC * w_idx.size:
                done = ~active
                if positions is None:
                    positions = np.arange(lanes, dtype=np.intp)
                out[positions[done]] = w_idx[done]
                positions = positions[active]
                w_idx = w_idx[active]
                w_col = w_col[active]
                tv = tv[active]
            go = xflat[sfeat[w_idx] + w_col] > tv
            w_idx = children[2 * w_idx + go]
        if positions is None:
            return w_idx
        out[positions] = w_idx
        return out

    def _apply_lanes(self, x: np.ndarray, starts: np.ndarray) -> np.ndarray:
        """Route ``x`` through the arena from each lane's start node.

        ``starts`` has shape () for a single tree or (n_trees,) for a
        forest; the result is (n,) or (n_trees, n) leaf indices.
        """
        n = x.shape[0]
        lanes = starts.shape + (n,)
        out = np.empty(lanes, dtype=np.intp)
        if n == 0:
            return out
        x = np.ascontiguousarray(x, dtype=np.float64)
        d = x.shape[1]
        xflat = x.reshape(-1)
        for s in range(0, n, _CHUNK):
            e = min(n, s + _CHUNK)
            shape = starts.shape + (e - s,)
            col = np.broadcast_to(
                np.arange(s, e, dtype=np.intp) * d, shape
            ).reshape(-1)
            idx = np.broadcast_to(starts[..., None], shape)
            idx = idx.astype(np.intp).reshape(-1)
            out[..., s:e] = self._route(xflat, col, idx).reshape(shape)
        return out


class FlatTree(_FlatBase):
    """One fitted decision tree as contiguous arrays.

    ``feature[i] < 0`` marks node ``i`` as a leaf; internal nodes route a
    sample left iff ``x[feature[i]] <= threshold[i]``.  ``proba[i]`` is
    the class distribution recorded at node ``i``.
    """

    @classmethod
    def from_tree(cls, tree) -> "FlatTree":
        """Flatten a fitted :class:`~repro.ml.tree.DecisionTreeClassifier`."""
        if tree.root_ is None:
            raise ValueError("cannot flatten an unfitted tree")
        feature: list[int] = []
        threshold: list[float] = []
        left: list[int] = []
        right: list[int] = []
        proba: list[np.ndarray] = []
        depth = _flatten_into(tree.root_, feature, threshold, left, right, proba)
        return cls(
            feature=np.asarray(feature, dtype=np.int32),
            threshold=np.asarray(threshold, dtype=np.float64),
            left=np.asarray(left, dtype=np.int32),
            right=np.asarray(right, dtype=np.int32),
            proba=np.vstack(proba),
            n_features=tree.n_features_,
            max_depth=depth,
        )

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Leaf index reached by every row of ``x`` (depth-many steps)."""
        return self._apply_lanes(x, np.zeros((), dtype=np.intp))

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Batched class distributions, bit-identical to the node walk."""
        return self.proba[self.apply(x)]


class FlatForest(_FlatBase):
    """Every tree of a forest in one arena, evaluated simultaneously.

    One routing step advances all (tree, sample) lanes a level; the loop
    runs ``max(tree depth)`` times total instead of once per node per
    tree.
    """

    __slots__ = ("roots",)

    def __init__(self, feature, threshold, left, right, proba, roots,
                 n_features: int, max_depth: int):
        super().__init__(feature, threshold, left, right, proba,
                         n_features, max_depth)
        self.roots = roots

    @classmethod
    def from_trees(cls, trees) -> "FlatForest":
        """Flatten fitted trees (e.g. ``RandomForestClassifier.trees_``)."""
        if not trees:
            raise ValueError("cannot flatten an empty forest")
        feature: list[int] = []
        threshold: list[float] = []
        left: list[int] = []
        right: list[int] = []
        proba: list[np.ndarray] = []
        roots: list[int] = []
        max_depth = 0
        for tree in trees:
            if tree.root_ is None:
                raise ValueError("cannot flatten an unfitted tree")
            roots.append(len(feature))
            depth = _flatten_into(tree.root_, feature, threshold, left, right,
                                  proba)
            if depth > max_depth:
                max_depth = depth
        return cls(
            feature=np.asarray(feature, dtype=np.int32),
            threshold=np.asarray(threshold, dtype=np.float64),
            left=np.asarray(left, dtype=np.int32),
            right=np.asarray(right, dtype=np.int32),
            proba=np.vstack(proba),
            roots=np.asarray(roots, dtype=np.intp),
            n_features=trees[0].n_features_,
            max_depth=max_depth,
        )

    @property
    def n_trees(self) -> int:
        return int(self.roots.shape[0])

    def apply(self, x: np.ndarray) -> np.ndarray:
        """(n_trees, n_samples) leaf indices into the shared arena."""
        return self._apply_lanes(x, self.roots)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Soft-voted class distributions over the whole batch.

        Per-tree probabilities are accumulated in tree order (t=0, 1, ...),
        matching the reference loop's summation order exactly, so the
        result is bit-identical to averaging ``tree.predict_proba`` calls.
        """
        leaves = self.proba[self.apply(x)]  # (T, n, C)
        out = leaves[0].copy()
        for t in range(1, leaves.shape[0]):
            out = out + leaves[t]
        return out / leaves.shape[0]
