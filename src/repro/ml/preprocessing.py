"""Feature scaling and label encoding."""

from __future__ import annotations

import numpy as np

from repro.errors import NotFittedError
from repro.ml.base import BaseEstimator

__all__ = ["StandardScaler", "LabelEncoder"]


class StandardScaler(BaseEstimator):
    """Zero-mean unit-variance scaling; constant features pass through."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, x: np.ndarray, y=None) -> "StandardScaler":
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError(f"x must be 2-D, got shape {x.shape}")
        self.mean_ = x.mean(axis=0)
        std = x.std(axis=0)
        # Treat numerically-constant features (std at float rounding noise
        # relative to the feature magnitude) as constant: dividing by an
        # ~1e-16 std would amplify cancellation garbage.
        eps = 1e-12 * np.maximum(1.0, np.abs(self.mean_))
        self.scale_ = np.where(std > eps, std, 1.0)
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise NotFittedError("StandardScaler must be fitted before transform")
        x = np.asarray(x, dtype=np.float64)
        return (x - self.mean_) / self.scale_

    def fit_transform(self, x: np.ndarray, y=None) -> np.ndarray:
        return self.fit(x).transform(x)

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise NotFittedError("StandardScaler must be fitted before use")
        return np.asarray(x, dtype=np.float64) * self.scale_ + self.mean_


class LabelEncoder:
    """Map arbitrary hashable labels to contiguous integers 0..K-1."""

    def __init__(self) -> None:
        self.classes_: np.ndarray | None = None

    def fit(self, y) -> "LabelEncoder":
        self.classes_ = np.unique(np.asarray(y))
        return self

    def transform(self, y) -> np.ndarray:
        if self.classes_ is None:
            raise NotFittedError("LabelEncoder must be fitted before transform")
        y = np.asarray(y)
        idx = np.searchsorted(self.classes_, y)
        bad = (idx >= len(self.classes_)) | (self.classes_[np.clip(idx, 0, len(self.classes_) - 1)] != y)
        if np.any(bad):
            unknown = sorted(set(np.asarray(y)[bad].tolist()))
            raise ValueError(f"unseen labels: {unknown}")
        return idx.astype(np.int64)

    def fit_transform(self, y) -> np.ndarray:
        return self.fit(y).transform(y)

    def inverse_transform(self, idx) -> np.ndarray:
        if self.classes_ is None:
            raise NotFittedError("LabelEncoder must be fitted before use")
        idx = np.asarray(idx, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= len(self.classes_)):
            raise ValueError("encoded labels out of range")
        return self.classes_[idx]
