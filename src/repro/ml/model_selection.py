"""Model selection: stratified k-fold, CV, grid search, nested CV (§V-C).

The paper's training protocol: *stratified* k-fold (the device classes are
imbalanced ~30/40/30), cross-validation against overestimation, *nested*
so the inner loop picks hyperparameters while the outer loop scores
generalization, reporting F1 rather than plain accuracy.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from repro.ml.base import BaseEstimator, clone
from repro.ml.metrics import accuracy_score, f1_score
from repro.rng import ensure_rng

__all__ = [
    "StratifiedKFold",
    "train_test_split",
    "cross_val_score",
    "GridSearchCV",
    "NestedCVResult",
    "nested_cross_validation",
]


class StratifiedKFold:
    """K folds preserving per-class proportions.

    Samples of each class are shuffled (if requested) then dealt
    round-robin into folds, so every fold's class histogram matches the
    dataset's within one sample — the imbalance fix of §V-C.
    """

    def __init__(
        self,
        n_splits: int = 5,
        shuffle: bool = True,
        random_state: "int | np.random.Generator | None" = None,
    ):
        if n_splits < 2:
            raise ValueError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, x, y) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield (train_indices, test_indices) per fold."""
        y = np.asarray(y)
        n = y.shape[0]
        if n < self.n_splits:
            raise ValueError(f"cannot split {n} samples into {self.n_splits} folds")
        rng = ensure_rng(self.random_state)
        fold_of = np.empty(n, dtype=np.int64)
        for cls in np.unique(y):
            idx = np.flatnonzero(y == cls)
            if self.shuffle:
                idx = rng.permutation(idx)
            if idx.size < self.n_splits:
                raise ValueError(
                    f"class {cls!r} has {idx.size} samples < n_splits={self.n_splits}"
                )
            fold_of[idx] = np.arange(idx.size) % self.n_splits
        for k in range(self.n_splits):
            test = np.flatnonzero(fold_of == k)
            train = np.flatnonzero(fold_of != k)
            yield train, test


def train_test_split(
    x,
    y,
    test_size: float = 0.25,
    stratify: bool = True,
    random_state: "int | np.random.Generator | None" = None,
):
    """Single stratified split; returns (x_tr, x_te, y_tr, y_te)."""
    if not (0.0 < test_size < 1.0):
        raise ValueError(f"test_size must be in (0, 1), got {test_size}")
    x = np.asarray(x)
    y = np.asarray(y)
    rng = ensure_rng(random_state)
    test_idx: list[np.ndarray] = []
    if stratify:
        for cls in np.unique(y):
            idx = rng.permutation(np.flatnonzero(y == cls))
            k = max(1, int(round(idx.size * test_size)))
            test_idx.append(idx[:k])
        test = np.concatenate(test_idx)
    else:
        perm = rng.permutation(y.shape[0])
        test = perm[: max(1, int(round(y.shape[0] * test_size)))]
    mask = np.zeros(y.shape[0], dtype=bool)
    mask[test] = True
    return x[~mask], x[mask], y[~mask], y[mask]


def _scorer(name: "str | Callable") -> Callable:
    if callable(name):
        return name
    if name == "accuracy":
        return lambda yt, yp: accuracy_score(yt, yp)
    if name == "f1":
        return lambda yt, yp: f1_score(yt, yp, average="weighted")
    raise ValueError(f"unknown scorer {name!r}; use 'accuracy', 'f1' or a callable")


def cross_val_score(
    estimator: BaseEstimator,
    x,
    y,
    cv: StratifiedKFold | int = 5,
    scoring: "str | Callable" = "accuracy",
) -> np.ndarray:
    """Per-fold test scores for an estimator."""
    if isinstance(cv, int):
        cv = StratifiedKFold(n_splits=cv)
    score = _scorer(scoring)
    x = np.asarray(x)
    y = np.asarray(y)
    out = []
    for train, test in cv.split(x, y):
        est = clone(estimator)
        est.fit(x[train], y[train])
        out.append(score(y[test], est.predict(x[test])))
    return np.asarray(out)


class GridSearchCV:
    """Exhaustive hyperparameter search scored by inner cross-validation."""

    def __init__(
        self,
        estimator: BaseEstimator,
        param_grid: dict[str, list],
        cv: StratifiedKFold | int = 3,
        scoring: "str | Callable" = "f1",
    ):
        if not param_grid:
            raise ValueError("param_grid must not be empty")
        self.estimator = estimator
        self.param_grid = param_grid
        self.cv = cv
        self.scoring = scoring
        self.best_params_: dict | None = None
        self.best_score_: float = float("-inf")
        self.best_estimator_: BaseEstimator | None = None
        self.results_: list[tuple[dict, float]] = []

    def _candidates(self) -> Iterator[dict]:
        keys = sorted(self.param_grid)
        for combo in itertools.product(*(self.param_grid[k] for k in keys)):
            yield dict(zip(keys, combo))

    def fit(self, x, y) -> "GridSearchCV":
        x = np.asarray(x)
        y = np.asarray(y)
        self.results_ = []
        for params in self._candidates():
            est = clone(self.estimator).set_params(**params)
            scores = cross_val_score(est, x, y, cv=self.cv, scoring=self.scoring)
            mean = float(scores.mean())
            self.results_.append((params, mean))
            if mean > self.best_score_:
                self.best_score_ = mean
                self.best_params_ = params
        self.best_estimator_ = clone(self.estimator).set_params(**self.best_params_)
        self.best_estimator_.fit(x, y)
        return self

    def predict(self, x) -> np.ndarray:
        if self.best_estimator_ is None:
            raise RuntimeError("GridSearchCV must be fitted before predict")
        return self.best_estimator_.predict(x)


@dataclass
class NestedCVResult:
    """Outcome of one stratified nested cross-validation run."""

    fold_scores: list[float] = field(default_factory=list)
    fold_params: list[dict] = field(default_factory=list)
    y_true: np.ndarray | None = None
    y_pred: np.ndarray | None = None

    @property
    def mean_score(self) -> float:
        """Mean outer-fold score."""
        return float(np.mean(self.fold_scores))

    @property
    def std_score(self) -> float:
        """Stddev of outer-fold scores."""
        return float(np.std(self.fold_scores))


def nested_cross_validation(
    estimator: BaseEstimator,
    x,
    y,
    param_grid: dict[str, list],
    outer_cv: StratifiedKFold | int = 5,
    inner_cv: StratifiedKFold | int = 3,
    scoring: "str | Callable" = "f1",
) -> NestedCVResult:
    """Stratified nested CV (§V-C): inner grid search, outer scoring.

    Returns per-outer-fold scores and the pooled out-of-fold predictions
    (which is what Table III's precision/recall/F1 are computed from).
    """
    if isinstance(outer_cv, int):
        outer_cv = StratifiedKFold(n_splits=outer_cv)
    x = np.asarray(x)
    y = np.asarray(y)
    score = _scorer(scoring)
    result = NestedCVResult()
    all_true: list[np.ndarray] = []
    all_pred: list[np.ndarray] = []
    for train, test in outer_cv.split(x, y):
        search = GridSearchCV(estimator, param_grid, cv=inner_cv, scoring=scoring)
        search.fit(x[train], y[train])
        pred = search.predict(x[test])
        result.fold_scores.append(score(y[test], pred))
        result.fold_params.append(search.best_params_)
        all_true.append(y[test])
        all_pred.append(pred)
    result.y_true = np.concatenate(all_true)
    result.y_pred = np.concatenate(all_pred)
    return result
