"""Workload generators for the streaming experiments.

:mod:`repro.workloads.streams` builds arrival processes — constant-rate,
bursty, diurnal, overload, plus the production shapes (MMPP bursts,
flash crowds, heavy-tailed sessions) — :mod:`repro.workloads.requests`
turns them into classification requests over the zoo models, and
:mod:`repro.workloads.mixed` interleaves several processes into one
multi-model trace.  These drive the adaptivity evaluation: the paper
motivates the energy policy with low-load periods ("diurnal patterns")
and the responsiveness claim with "data bursts [and] application
overloads".
"""

from repro.workloads.mixed import MixedTrace, TraceComponent, split_trace
from repro.workloads.requests import InferenceRequest, RequestTrace, make_trace
from repro.workloads.streams import (
    ArrivalProcess,
    BurstStream,
    ConstantStream,
    DiurnalStream,
    FlashCrowdStream,
    MMPPStream,
    OverloadStream,
    PoissonStream,
    SessionStream,
)

__all__ = [
    "InferenceRequest",
    "RequestTrace",
    "make_trace",
    "MixedTrace",
    "TraceComponent",
    "split_trace",
    "ArrivalProcess",
    "ConstantStream",
    "PoissonStream",
    "BurstStream",
    "DiurnalStream",
    "OverloadStream",
    "MMPPStream",
    "FlashCrowdStream",
    "SessionStream",
]
