"""Workload generators for the streaming experiments.

:mod:`repro.workloads.streams` builds arrival processes — constant-rate,
bursty, diurnal and overload — and :mod:`repro.workloads.requests` turns
them into classification requests over the zoo models.  These drive the
adaptivity evaluation: the paper motivates the energy policy with
low-load periods ("diurnal patterns") and the responsiveness claim with
"data bursts [and] application overloads".
"""

from repro.workloads.requests import InferenceRequest, RequestTrace, make_trace
from repro.workloads.streams import (
    ArrivalProcess,
    BurstStream,
    ConstantStream,
    DiurnalStream,
    OverloadStream,
    PoissonStream,
)

__all__ = [
    "InferenceRequest",
    "RequestTrace",
    "make_trace",
    "ArrivalProcess",
    "ConstantStream",
    "PoissonStream",
    "BurstStream",
    "DiurnalStream",
    "OverloadStream",
]
