"""Multi-model / multi-tenant trace mixing.

A production fleet never serves one model from one arrival process: it
serves a *mix* — a bursty recommendation stream over here, a flash crowd
on the search model over there, a trickle of heavy batch jobs underneath.
:class:`MixedTrace` interleaves any number of
:class:`~repro.workloads.streams.ArrivalProcess` components into a single
time-ordered :class:`~repro.workloads.requests.RequestTrace`, with
per-component model pools, thinning weights, policies and SLOs.

Seeding contract: ``build(rng)`` spawns one independent child generator
per component (:func:`repro.rng.spawn`), so every component's arrivals,
thinning coin-flips and model choices are reproducible in isolation —
adding a component never perturbs the others' randomness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rng import ensure_rng, spawn
from repro.workloads.requests import InferenceRequest, RequestTrace
from repro.workloads.streams import ArrivalProcess

__all__ = ["TraceComponent", "MixedTrace", "split_trace"]


def _model_name(model) -> str:
    return model if isinstance(model, str) else model.name


@dataclass(frozen=True)
class TraceComponent:
    """One tenant's contribution to a mixed trace.

    ``models`` is the pool this component draws from uniformly per
    request (names or ModelSpec-likes with a ``.name``); ``weight`` in
    (0, 1] thins the component's arrivals by independent coin flips, so
    traffic shares can be dialed without re-tuning every process rate.
    """

    process: ArrivalProcess
    models: tuple = ()
    weight: float = 1.0
    policy: str = "throughput"
    name: str = ""

    def __post_init__(self) -> None:
        if not self.models:
            raise ValueError("component needs at least one model")
        if not 0.0 < self.weight <= 1.0:
            raise ValueError(f"weight must be in (0, 1], got {self.weight}")

    @property
    def model_names(self) -> tuple[str, ...]:
        return tuple(_model_name(m) for m in self.models)


@dataclass(frozen=True)
class MixedTrace:
    """Builder that merges component streams into one ordered trace."""

    components: tuple[TraceComponent, ...]

    def __post_init__(self) -> None:
        if not self.components:
            raise ValueError("MixedTrace needs at least one component")

    def build(
        self,
        rng: "int | np.random.Generator | None" = None,
        n_requests: "int | None" = None,
    ) -> RequestTrace:
        """Generate, thin, merge and number the mixed trace.

        Ties (quantized streams collide constantly) order by component
        index then within-component order, so the merge is stable and a
        rebuild under the same seed is byte-identical.  ``n_requests``
        truncates to the first n requests in merged order — the knob the
        million-request bench uses to hit an exact trace size.
        """
        gen = ensure_rng(rng)
        children = spawn(gen, len(self.components))
        all_t: list[np.ndarray] = []
        all_batch: list[np.ndarray] = []
        all_comp: list[np.ndarray] = []
        all_model: list[np.ndarray] = []
        for ci, (comp, child) in enumerate(zip(self.components, children)):
            pairs = comp.process.generate(child)
            times = np.array([t for t, _ in pairs], dtype=np.float64)
            batches = np.array([b for _, b in pairs], dtype=np.int64)
            if comp.weight < 1.0:
                keep = child.random(times.size) < comp.weight
                times, batches = times[keep], batches[keep]
            model_idx = child.integers(len(comp.models), size=times.size)
            all_t.append(times)
            all_batch.append(batches)
            all_comp.append(np.full(times.size, ci, dtype=np.int64))
            all_model.append(model_idx)
        t = np.concatenate(all_t)
        batch = np.concatenate(all_batch)
        comp_idx = np.concatenate(all_comp)
        model_idx = np.concatenate(all_model)
        within = np.concatenate(
            [np.arange(a.size, dtype=np.int64) for a in all_t]
        )
        # lexsort keys run least- to most-significant.
        order = np.lexsort((within, comp_idx, t))
        if n_requests is not None:
            if n_requests < 0:
                raise ValueError(f"n_requests must be >= 0, got {n_requests}")
            order = order[:n_requests]
        names = [c.model_names for c in self.components]
        slos = [c.process.slo_s for c in self.components]
        policies = [c.policy for c in self.components]
        requests = []
        for rid, k in enumerate(order.tolist()):
            ci = int(comp_idx[k])
            arrival = float(t[k])
            slo = slos[ci]
            requests.append(
                InferenceRequest(
                    request_id=rid,
                    arrival_s=arrival,
                    model=names[ci][int(model_idx[k])],
                    batch=int(batch[k]),
                    policy=policies[ci],
                    deadline_s=None if slo is None else arrival + slo,
                )
            )
        return RequestTrace(requests=tuple(requests))


def split_trace(
    trace: RequestTrace, assignment, n_shards: int
) -> tuple[RequestTrace, ...]:
    """Partition a trace into per-shard subtraces, ids and order intact.

    ``assignment`` maps each request (positionally) to a shard in
    ``[0, n_shards)`` — typically a front tier's choices (see
    :mod:`repro.cluster.balancers`).  Each subtrace keeps the parent's
    request ids and relative arrival order, so replaying the shards
    independently and merging outcomes by id reconstructs exactly the
    population a monolithic replay would have resolved.  Because
    :meth:`MixedTrace.build` drives every component from an independent
    child RNG, the parent trace — and therefore every split of it — is
    reproducible from the one global seed regardless of shard count.
    """
    if n_shards <= 0:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    if len(assignment) != len(trace):
        raise ValueError(
            f"assignment covers {len(assignment)} requests, trace has {len(trace)}"
        )
    buckets: list[list[InferenceRequest]] = [[] for _ in range(n_shards)]
    for request, shard in zip(trace, assignment):
        shard = int(shard)
        if not 0 <= shard < n_shards:
            raise ValueError(
                f"request {request.request_id} assigned to shard {shard}, "
                f"valid range is 0..{n_shards - 1}"
            )
        buckets[shard].append(request)
    return tuple(RequestTrace(requests=tuple(b)) for b in buckets)
