"""Classification requests and traces for the streaming runtime.

Traces serialize to JSON (:meth:`RequestTrace.to_json` / ``from_json``) so
a stream experiment can be replayed exactly across processes or shipped as
a benchmark artifact.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

import numpy as np

from repro.nn.builders import ModelSpec
from repro.rng import ensure_rng
from repro.workloads.streams import ArrivalProcess

__all__ = ["InferenceRequest", "RequestTrace", "make_trace"]


@dataclass(frozen=True, slots=True)
class InferenceRequest:
    """One unit of schedulable work: a batch for one deployed model.

    ``origin_arrival_s`` marks a *follow-up* request: work re-enqueued on
    behalf of an earlier request (a cascade escalation).  It carries the
    chain's first arrival time so end-to-end latency keeps counting from
    the moment the original request entered the system, while
    ``deadline_s`` stays the original *absolute* SLO — a follow-up never
    gets a reset deadline.
    """

    request_id: int
    arrival_s: float
    model: str
    batch: int
    policy: str = "throughput"
    deadline_s: "float | None" = None     # absolute completion deadline (SLO)
    origin_arrival_s: "float | None" = None   # chain's first arrival (follow-ups)

    def __post_init__(self) -> None:
        if self.batch <= 0:
            raise ValueError(f"batch must be positive, got {self.batch}")
        if self.arrival_s < 0.0:
            raise ValueError(f"arrival must be >= 0, got {self.arrival_s}")
        if self.deadline_s is not None and self.deadline_s <= self.arrival_s:
            raise ValueError(
                f"deadline {self.deadline_s} must fall after arrival {self.arrival_s}"
            )
        if self.origin_arrival_s is not None and self.origin_arrival_s > self.arrival_s:
            raise ValueError(
                f"origin arrival {self.origin_arrival_s} must not fall after "
                f"re-enqueue arrival {self.arrival_s}"
            )

    @property
    def effective_arrival_s(self) -> float:
        """The arrival that end-to-end latency counts from.

        The original arrival for follow-up (escalated) requests, this
        request's own arrival otherwise.
        """
        return (
            self.origin_arrival_s
            if self.origin_arrival_s is not None
            else self.arrival_s
        )

    @property
    def slack_s(self) -> "float | None":
        """Time budget from arrival to deadline (None without an SLO)."""
        if self.deadline_s is None:
            return None
        return self.deadline_s - self.arrival_s


@dataclass(frozen=True)
class RequestTrace:
    """A time-ordered sequence of requests."""

    requests: tuple[InferenceRequest, ...]

    def __post_init__(self) -> None:
        times = [r.arrival_s for r in self.requests]
        if any(b < a for a, b in zip(times, times[1:])):
            raise ValueError("requests must be time-ordered")

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self):
        return iter(self.requests)

    @property
    def horizon_s(self) -> float:
        """Arrival time of the last request (0 for an empty trace)."""
        return self.requests[-1].arrival_s if self.requests else 0.0

    @property
    def total_samples(self) -> int:
        """Samples summed over all requests."""
        return sum(r.batch for r in self.requests)

    # -- persistence -----------------------------------------------------

    def to_json(self) -> str:
        """Serialize the trace (order and fields preserved exactly)."""
        return json.dumps([asdict(r) for r in self.requests])

    @classmethod
    def from_json(cls, text: str) -> "RequestTrace":
        """Rebuild a trace serialized by :meth:`to_json` (validating)."""
        try:
            rows = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"invalid trace JSON: {exc}") from exc
        if not isinstance(rows, list):
            raise ValueError("trace JSON must be a list of requests")
        try:
            requests = tuple(InferenceRequest(**row) for row in rows)
        except TypeError as exc:
            raise ValueError(f"malformed request record: {exc}") from exc
        return cls(requests=requests)

    def save(self, path) -> None:
        """Write the trace as JSON to a file path."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())

    @classmethod
    def load(cls, path) -> "RequestTrace":
        """Read a trace written by save()."""
        with open(path, encoding="utf-8") as fh:
            return cls.from_json(fh.read())


def make_trace(
    process: ArrivalProcess,
    specs: "list[ModelSpec]",
    policy: str = "throughput",
    rng: "int | np.random.Generator | None" = None,
) -> RequestTrace:
    """Instantiate an arrival process into requests over the given models.

    Each arrival picks its model uniformly — the mixed-application setting
    the scheduler targets (§V: models with "strong diversity").  When the
    process carries an SLO (``process.slo_s``), every request gets a
    deadline ``slo_s`` after its arrival.
    """
    if not specs:
        raise ValueError("make_trace needs at least one model spec")
    gen = ensure_rng(rng)
    arrivals = process.generate(gen)
    slo = getattr(process, "slo_s", None)
    requests = tuple(
        InferenceRequest(
            request_id=i,
            arrival_s=t,
            model=specs[int(gen.integers(len(specs)))].name,
            batch=batch,
            policy=policy,
            deadline_s=None if slo is None else t + slo,
        )
        for i, (t, batch) in enumerate(arrivals)
    )
    return RequestTrace(requests=requests)
