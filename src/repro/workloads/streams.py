"""Arrival processes: when requests show up and how big they are.

Each process generates ``(arrival_time_s, batch_size)`` pairs over a
horizon.  Batch size tracks load: at high arrival intensity the producer
has accumulated more samples per request (the paper's observation that
data volume and velocity vary together under bursts/diurnal patterns).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rng import ensure_rng

__all__ = [
    "ArrivalProcess",
    "ConstantStream",
    "PoissonStream",
    "BurstStream",
    "DiurnalStream",
    "OverloadStream",
    "MMPPStream",
    "FlashCrowdStream",
    "SessionStream",
]


def _clip_batch(values: np.ndarray, lo: int, hi: int) -> np.ndarray:
    return np.clip(np.round(values), lo, hi).astype(np.int64)


def _quantize(times: np.ndarray, quantum_s: "float | None") -> np.ndarray:
    """Truncate timestamps to a log-resolution grid (floor, so values stay
    in [0, horizon) and order is preserved)."""
    if not quantum_s:
        return times
    return np.floor(times / quantum_s) * quantum_s


def _exp_offsets(gen: np.random.Generator, rate_hz: float, span_s: float) -> np.ndarray:
    """Poisson-process offsets in [0, span) via exponential gaps.

    Draws gap blocks until the cumulative sum passes the span, so the tail
    is never undercounted; consumes a deterministic amount of ``gen``
    state for a given (rate, span, prior state).
    """
    if span_s <= 0.0:
        return np.empty(0, dtype=np.float64)
    chunks = []
    total = 0.0
    size = max(8, int(np.ceil(rate_hz * span_s * 1.2)) + 8)
    while True:
        cum = total + np.cumsum(gen.exponential(1.0 / rate_hz, size=size))
        chunks.append(cum)
        total = float(cum[-1])
        if total >= span_s:
            break
    offsets = np.concatenate(chunks) if len(chunks) > 1 else chunks[0]
    return offsets[offsets < span_s]


@dataclass(frozen=True)
class ArrivalProcess:
    """Base class: subclasses implement :meth:`generate`.

    ``slo_s`` optionally attaches a service-level objective to the stream:
    every generated request carries ``deadline_s = arrival_s + slo_s``
    (consumed by :func:`repro.workloads.requests.make_trace`), so a trace
    can drive a deadline-aware serving frontend end to end.
    """

    horizon_s: float = 10.0
    slo_s: "float | None" = None

    def __post_init__(self) -> None:
        # Validate at construction so a bad horizon can never silently
        # yield an empty trace (or empty burst_windows()).
        if self.horizon_s <= 0.0:
            raise ValueError(f"horizon_s must be positive, got {self.horizon_s}")
        if self.slo_s is not None and self.slo_s <= 0.0:
            raise ValueError(f"slo_s must be positive, got {self.slo_s}")

    def generate(
        self, rng: "int | np.random.Generator | None" = None
    ) -> list[tuple[float, int]]:
        """Return time-ordered ``(arrival_s, batch)`` pairs in [0, horizon)."""
        raise NotImplementedError

    def _check(self) -> None:
        if self.horizon_s <= 0.0:
            raise ValueError(f"horizon_s must be positive, got {self.horizon_s}")


@dataclass(frozen=True)
class ConstantStream(ArrivalProcess):
    """Fixed interval, fixed batch — the steady baseline."""

    interval_s: float = 0.1
    batch: int = 256

    def generate(self, rng=None) -> list[tuple[float, int]]:
        self._check()
        if self.interval_s <= 0.0 or self.batch <= 0:
            raise ValueError("interval and batch must be positive")
        times = np.arange(0.0, self.horizon_s, self.interval_s)
        return [(float(t), self.batch) for t in times]


@dataclass(frozen=True)
class PoissonStream(ArrivalProcess):
    """Poisson arrivals with geometric-ish lognormal batch sizes."""

    rate_hz: float = 20.0
    mean_batch: int = 256
    batch_sigma: float = 1.0
    max_batch: int = 1 << 17

    def generate(self, rng=None) -> list[tuple[float, int]]:
        self._check()
        if self.rate_hz <= 0.0 or self.mean_batch <= 0:
            raise ValueError("rate and mean batch must be positive")
        gen = ensure_rng(rng)
        n_expected = int(np.ceil(self.rate_hz * self.horizon_s * 1.5)) + 8
        gaps = gen.exponential(1.0 / self.rate_hz, size=n_expected)
        times = np.cumsum(gaps)
        times = times[times < self.horizon_s]
        batches = _clip_batch(
            np.exp(np.log(self.mean_batch) + self.batch_sigma * gen.standard_normal(times.size)),
            1,
            self.max_batch,
        )
        return list(zip(times.tolist(), batches.tolist()))


@dataclass(frozen=True)
class BurstStream(ArrivalProcess):
    """Quiet background traffic punctuated by dense bursts.

    During a burst the arrival rate multiplies by ``burst_factor`` and
    batches grow accordingly — the "data bursts" the scheduler must absorb.
    """

    base_rate_hz: float = 5.0
    burst_factor: float = 20.0
    burst_duration_s: float = 0.5
    burst_every_s: float = 3.0
    base_batch: int = 64
    max_batch: int = 1 << 17

    def generate(self, rng=None) -> list[tuple[float, int]]:
        self._check()
        if self.burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1")
        gen = ensure_rng(rng)
        out: list[tuple[float, int]] = []
        t = 0.0
        while t < self.horizon_s:
            in_burst = (t % self.burst_every_s) < self.burst_duration_s
            rate = self.base_rate_hz * (self.burst_factor if in_burst else 1.0)
            batch = self.base_batch * (int(self.burst_factor) if in_burst else 1)
            out.append((t, int(min(batch, self.max_batch))))
            t += float(gen.exponential(1.0 / rate))
        return out

    def burst_windows(self) -> list[tuple[float, float]]:
        """The [start, end) intervals where bursts are active."""
        windows = []
        start = 0.0
        while start < self.horizon_s:
            windows.append((start, min(start + self.burst_duration_s, self.horizon_s)))
            start += self.burst_every_s
        return windows


@dataclass(frozen=True)
class DiurnalStream(ArrivalProcess):
    """Sinusoidal day/night load: batch and rate follow a slow cycle.

    Models the diurnal patterns of §I whose low-load valleys are where the
    energy policy pays off (a low-end device suffices at night).
    """

    period_s: float = 8.0
    peak_rate_hz: float = 40.0
    trough_rate_hz: float = 2.0
    peak_batch: int = 4096
    trough_batch: int = 8

    def generate(self, rng=None) -> list[tuple[float, int]]:
        self._check()
        if self.trough_rate_hz <= 0 or self.peak_rate_hz < self.trough_rate_hz:
            raise ValueError("need 0 < trough_rate <= peak_rate")
        gen = ensure_rng(rng)
        out: list[tuple[float, int]] = []
        t = 0.0
        while t < self.horizon_s:
            phase = 0.5 * (1.0 - np.cos(2.0 * np.pi * t / self.period_s))  # 0..1
            rate = self.trough_rate_hz + phase * (self.peak_rate_hz - self.trough_rate_hz)
            batch = int(
                round(
                    np.exp(
                        np.log(self.trough_batch)
                        + phase * (np.log(self.peak_batch) - np.log(self.trough_batch))
                    )
                )
            )
            out.append((t, max(1, batch)))
            t += float(gen.exponential(1.0 / rate))
        return out

    def phase_at(self, t: float) -> float:
        """Load phase in [0, 1] at time ``t`` (0 = trough, 1 = peak)."""
        return float(0.5 * (1.0 - np.cos(2.0 * np.pi * t / self.period_s)))


@dataclass(frozen=True)
class OverloadStream(ArrivalProcess):
    """A step overload: normal load, then a sustained flood.

    Exercises the "application overloads" responsiveness claim — the
    scheduler should shift to the high-throughput device when the flood
    hits and back when it recedes.
    """

    normal_rate_hz: float = 5.0
    overload_rate_hz: float = 100.0
    overload_start_s: float = 3.0
    overload_end_s: float = 7.0
    normal_batch: int = 32
    overload_batch: int = 8192

    def generate(self, rng=None) -> list[tuple[float, int]]:
        self._check()
        if not (0.0 <= self.overload_start_s < self.overload_end_s):
            raise ValueError("overload window is empty or negative")
        gen = ensure_rng(rng)
        out: list[tuple[float, int]] = []
        t = 0.0
        while t < self.horizon_s:
            overloaded = self.overload_start_s <= t < self.overload_end_s
            rate = self.overload_rate_hz if overloaded else self.normal_rate_hz
            batch = self.overload_batch if overloaded else self.normal_batch
            out.append((t, batch))
            t += float(gen.exponential(1.0 / rate))
        return out


@dataclass(frozen=True)
class MMPPStream(ArrivalProcess):
    """Markov-modulated Poisson process: bursty production traffic.

    A continuous-time Markov chain walks over ``rates_hz`` states
    (exponential sojourns with per-state means); within a state, arrivals
    are Poisson at that state's rate.  Two states (quiet / burst) give the
    classic interrupted-Poisson burst process; more states approximate
    self-similar traffic.  Batch sizes are lognormal around
    ``mean_batch``, independent of state.

    ``quantum_s`` truncates timestamps to a production-log grid (default
    1 ms).  Real open-loop traces carry finite-resolution timestamps, so
    simultaneous arrivals are the norm — and the serving stack's
    vectorized arrival path batches exactly those same-timestamp runs.
    Set ``quantum_s=None`` for continuous timestamps.
    """

    rates_hz: tuple[float, ...] = (200.0, 2_000.0)
    mean_sojourn_s: tuple[float, ...] = (2.0, 0.25)
    mean_batch: int = 64
    batch_sigma: float = 0.8
    max_batch: int = 1 << 17
    start_state: int = 0
    quantum_s: "float | None" = 1e-3

    def generate(self, rng=None) -> list[tuple[float, int]]:
        self._check()
        if len(self.rates_hz) != len(self.mean_sojourn_s) or not self.rates_hz:
            raise ValueError(
                "rates_hz and mean_sojourn_s must be equal-length and non-empty"
            )
        if any(r <= 0.0 for r in self.rates_hz):
            raise ValueError(f"rates must be positive, got {self.rates_hz}")
        if any(s <= 0.0 for s in self.mean_sojourn_s):
            raise ValueError(f"sojourns must be positive, got {self.mean_sojourn_s}")
        if not 0 <= self.start_state < len(self.rates_hz):
            raise ValueError(
                f"start_state {self.start_state} out of range for "
                f"{len(self.rates_hz)} states"
            )
        if self.mean_batch <= 0:
            raise ValueError(f"mean_batch must be positive, got {self.mean_batch}")
        if self.quantum_s is not None and self.quantum_s <= 0.0:
            raise ValueError(f"quantum_s must be positive, got {self.quantum_s}")
        gen = ensure_rng(rng)
        n_states = len(self.rates_hz)
        segments: list[np.ndarray] = []
        t = 0.0
        state = self.start_state
        while t < self.horizon_s:
            dwell = float(gen.exponential(self.mean_sojourn_s[state]))
            span = min(dwell, self.horizon_s - t)
            segments.append(t + _exp_offsets(gen, self.rates_hz[state], span))
            t += dwell
            if n_states > 1:
                # Uniform jump to one of the *other* states.
                state = (state + 1 + int(gen.integers(n_states - 1))) % n_states
        times = _quantize(np.concatenate(segments), self.quantum_s)
        batches = _clip_batch(
            np.exp(
                np.log(self.mean_batch)
                + self.batch_sigma * gen.standard_normal(times.size)
            ),
            1,
            self.max_batch,
        )
        return list(zip(times.tolist(), batches.tolist()))


@dataclass(frozen=True)
class FlashCrowdStream(ArrivalProcess):
    """Baseline traffic, a sudden spike, then an exponential decay.

    The arrival intensity is a deterministic profile — ``base_rate_hz``
    until ``spike_at_s``, a linear ramp to ``peak_rate_hz`` over
    ``ramp_s``, then exponential relaxation back toward base with time
    constant ``decay_tau_s`` — sampled as a non-homogeneous Poisson
    process by thinning (draw at the peak rate, keep each arrival with
    probability ``rate(t) / peak``).  Batches are lognormal and small:
    a flash crowd is many users sending little, not one user sending much.
    """

    base_rate_hz: float = 300.0
    peak_rate_hz: float = 6_000.0
    spike_at_s: float = 3.0
    ramp_s: float = 0.5
    decay_tau_s: float = 2.0
    mean_batch: int = 16
    batch_sigma: float = 0.6
    max_batch: int = 1 << 17
    quantum_s: "float | None" = 1e-3

    def rate_at(self, t: "float | np.ndarray") -> np.ndarray:
        """The intensity profile in Hz (vectorized over ``t``)."""
        t = np.asarray(t, dtype=np.float64)
        ramp_end = self.spike_at_s + self.ramp_s
        ramp = self.base_rate_hz + (self.peak_rate_hz - self.base_rate_hz) * (
            (t - self.spike_at_s) / self.ramp_s
        )
        decay = self.base_rate_hz + (self.peak_rate_hz - self.base_rate_hz) * np.exp(
            -(t - ramp_end) / self.decay_tau_s
        )
        return np.where(
            t < self.spike_at_s,
            self.base_rate_hz,
            np.where(t < ramp_end, ramp, decay),
        )

    def generate(self, rng=None) -> list[tuple[float, int]]:
        self._check()
        if not 0.0 < self.base_rate_hz <= self.peak_rate_hz:
            raise ValueError(
                f"need 0 < base_rate <= peak_rate, got "
                f"{self.base_rate_hz}/{self.peak_rate_hz}"
            )
        if self.spike_at_s < 0.0 or self.ramp_s <= 0.0 or self.decay_tau_s <= 0.0:
            raise ValueError("spike_at must be >= 0; ramp and decay_tau positive")
        if self.mean_batch <= 0:
            raise ValueError(f"mean_batch must be positive, got {self.mean_batch}")
        if self.quantum_s is not None and self.quantum_s <= 0.0:
            raise ValueError(f"quantum_s must be positive, got {self.quantum_s}")
        gen = ensure_rng(rng)
        candidates = _exp_offsets(gen, self.peak_rate_hz, self.horizon_s)
        keep = gen.random(candidates.size) < (
            self.rate_at(candidates) / self.peak_rate_hz
        )
        times = _quantize(candidates[keep], self.quantum_s)
        batches = _clip_batch(
            np.exp(
                np.log(self.mean_batch)
                + self.batch_sigma * gen.standard_normal(times.size)
            ),
            1,
            self.max_batch,
        )
        return list(zip(times.tolist(), batches.tolist()))


@dataclass(frozen=True)
class SessionStream(ArrivalProcess):
    """Heavy-tailed per-user sessions.

    Users arrive as a Poisson process at ``session_rate_hz``; each session
    issues a geometric number of requests (mean ``1 / continue_p`` ... in
    numpy terms ``gen.geometric(continue_p)``) separated by Pareto think
    times (scale ``think_min_s``, shape ``think_alpha`` — alpha <= 1 gives
    an infinite-mean tail, the classic self-similarity driver).  Requests
    from overlapping sessions interleave; the output is the time-sorted
    union, truncated to the horizon.
    """

    session_rate_hz: float = 50.0
    continue_p: float = 0.2
    think_min_s: float = 0.05
    think_alpha: float = 1.5
    mean_batch: int = 8
    batch_sigma: float = 0.5
    max_batch: int = 1 << 17
    quantum_s: "float | None" = 1e-3

    def generate(self, rng=None) -> list[tuple[float, int]]:
        self._check()
        if self.session_rate_hz <= 0.0:
            raise ValueError(
                f"session_rate_hz must be positive, got {self.session_rate_hz}"
            )
        if not 0.0 < self.continue_p <= 1.0:
            raise ValueError(f"continue_p must be in (0, 1], got {self.continue_p}")
        if self.think_min_s <= 0.0 or self.think_alpha <= 0.0:
            raise ValueError("think_min_s and think_alpha must be positive")
        if self.mean_batch <= 0:
            raise ValueError(f"mean_batch must be positive, got {self.mean_batch}")
        if self.quantum_s is not None and self.quantum_s <= 0.0:
            raise ValueError(f"quantum_s must be positive, got {self.quantum_s}")
        gen = ensure_rng(rng)
        starts = _exp_offsets(gen, self.session_rate_hz, self.horizon_s)
        if starts.size == 0:
            return []
        lengths = gen.geometric(self.continue_p, size=starts.size)
        total = int(lengths.sum())
        # Segmented cumsum: think gaps flattened across sessions, zeroed at
        # each session's first request, then rebased per session.
        gaps = self.think_min_s * (1.0 + gen.pareto(self.think_alpha, size=total))
        first_idx = np.cumsum(lengths) - lengths
        gaps[first_idx] = 0.0
        cum = np.cumsum(gaps)
        offsets = cum - np.repeat(cum[first_idx], lengths)
        times = np.repeat(starts, lengths) + offsets
        batches = _clip_batch(
            np.exp(
                np.log(self.mean_batch)
                + self.batch_sigma * gen.standard_normal(times.size)
            ),
            1,
            self.max_batch,
        )
        mask = times < self.horizon_s
        times, batches = times[mask], batches[mask]
        order = np.argsort(times, kind="stable")
        times = _quantize(times[order], self.quantum_s)
        return list(zip(times.tolist(), batches[order].tolist()))
