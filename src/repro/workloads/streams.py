"""Arrival processes: when requests show up and how big they are.

Each process generates ``(arrival_time_s, batch_size)`` pairs over a
horizon.  Batch size tracks load: at high arrival intensity the producer
has accumulated more samples per request (the paper's observation that
data volume and velocity vary together under bursts/diurnal patterns).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rng import ensure_rng

__all__ = [
    "ArrivalProcess",
    "ConstantStream",
    "PoissonStream",
    "BurstStream",
    "DiurnalStream",
    "OverloadStream",
]


def _clip_batch(values: np.ndarray, lo: int, hi: int) -> np.ndarray:
    return np.clip(np.round(values), lo, hi).astype(np.int64)


@dataclass(frozen=True)
class ArrivalProcess:
    """Base class: subclasses implement :meth:`generate`.

    ``slo_s`` optionally attaches a service-level objective to the stream:
    every generated request carries ``deadline_s = arrival_s + slo_s``
    (consumed by :func:`repro.workloads.requests.make_trace`), so a trace
    can drive a deadline-aware serving frontend end to end.
    """

    horizon_s: float = 10.0
    slo_s: "float | None" = None

    def __post_init__(self) -> None:
        # Validate at construction so a bad horizon can never silently
        # yield an empty trace (or empty burst_windows()).
        if self.horizon_s <= 0.0:
            raise ValueError(f"horizon_s must be positive, got {self.horizon_s}")
        if self.slo_s is not None and self.slo_s <= 0.0:
            raise ValueError(f"slo_s must be positive, got {self.slo_s}")

    def generate(
        self, rng: "int | np.random.Generator | None" = None
    ) -> list[tuple[float, int]]:
        """Return time-ordered ``(arrival_s, batch)`` pairs in [0, horizon)."""
        raise NotImplementedError

    def _check(self) -> None:
        if self.horizon_s <= 0.0:
            raise ValueError(f"horizon_s must be positive, got {self.horizon_s}")


@dataclass(frozen=True)
class ConstantStream(ArrivalProcess):
    """Fixed interval, fixed batch — the steady baseline."""

    interval_s: float = 0.1
    batch: int = 256

    def generate(self, rng=None) -> list[tuple[float, int]]:
        self._check()
        if self.interval_s <= 0.0 or self.batch <= 0:
            raise ValueError("interval and batch must be positive")
        times = np.arange(0.0, self.horizon_s, self.interval_s)
        return [(float(t), self.batch) for t in times]


@dataclass(frozen=True)
class PoissonStream(ArrivalProcess):
    """Poisson arrivals with geometric-ish lognormal batch sizes."""

    rate_hz: float = 20.0
    mean_batch: int = 256
    batch_sigma: float = 1.0
    max_batch: int = 1 << 17

    def generate(self, rng=None) -> list[tuple[float, int]]:
        self._check()
        if self.rate_hz <= 0.0 or self.mean_batch <= 0:
            raise ValueError("rate and mean batch must be positive")
        gen = ensure_rng(rng)
        n_expected = int(np.ceil(self.rate_hz * self.horizon_s * 1.5)) + 8
        gaps = gen.exponential(1.0 / self.rate_hz, size=n_expected)
        times = np.cumsum(gaps)
        times = times[times < self.horizon_s]
        batches = _clip_batch(
            np.exp(np.log(self.mean_batch) + self.batch_sigma * gen.standard_normal(times.size)),
            1,
            self.max_batch,
        )
        return list(zip(times.tolist(), batches.tolist()))


@dataclass(frozen=True)
class BurstStream(ArrivalProcess):
    """Quiet background traffic punctuated by dense bursts.

    During a burst the arrival rate multiplies by ``burst_factor`` and
    batches grow accordingly — the "data bursts" the scheduler must absorb.
    """

    base_rate_hz: float = 5.0
    burst_factor: float = 20.0
    burst_duration_s: float = 0.5
    burst_every_s: float = 3.0
    base_batch: int = 64
    max_batch: int = 1 << 17

    def generate(self, rng=None) -> list[tuple[float, int]]:
        self._check()
        if self.burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1")
        gen = ensure_rng(rng)
        out: list[tuple[float, int]] = []
        t = 0.0
        while t < self.horizon_s:
            in_burst = (t % self.burst_every_s) < self.burst_duration_s
            rate = self.base_rate_hz * (self.burst_factor if in_burst else 1.0)
            batch = self.base_batch * (int(self.burst_factor) if in_burst else 1)
            out.append((t, int(min(batch, self.max_batch))))
            t += float(gen.exponential(1.0 / rate))
        return out

    def burst_windows(self) -> list[tuple[float, float]]:
        """The [start, end) intervals where bursts are active."""
        windows = []
        start = 0.0
        while start < self.horizon_s:
            windows.append((start, min(start + self.burst_duration_s, self.horizon_s)))
            start += self.burst_every_s
        return windows


@dataclass(frozen=True)
class DiurnalStream(ArrivalProcess):
    """Sinusoidal day/night load: batch and rate follow a slow cycle.

    Models the diurnal patterns of §I whose low-load valleys are where the
    energy policy pays off (a low-end device suffices at night).
    """

    period_s: float = 8.0
    peak_rate_hz: float = 40.0
    trough_rate_hz: float = 2.0
    peak_batch: int = 4096
    trough_batch: int = 8

    def generate(self, rng=None) -> list[tuple[float, int]]:
        self._check()
        if self.trough_rate_hz <= 0 or self.peak_rate_hz < self.trough_rate_hz:
            raise ValueError("need 0 < trough_rate <= peak_rate")
        gen = ensure_rng(rng)
        out: list[tuple[float, int]] = []
        t = 0.0
        while t < self.horizon_s:
            phase = 0.5 * (1.0 - np.cos(2.0 * np.pi * t / self.period_s))  # 0..1
            rate = self.trough_rate_hz + phase * (self.peak_rate_hz - self.trough_rate_hz)
            batch = int(
                round(
                    np.exp(
                        np.log(self.trough_batch)
                        + phase * (np.log(self.peak_batch) - np.log(self.trough_batch))
                    )
                )
            )
            out.append((t, max(1, batch)))
            t += float(gen.exponential(1.0 / rate))
        return out

    def phase_at(self, t: float) -> float:
        """Load phase in [0, 1] at time ``t`` (0 = trough, 1 = peak)."""
        return float(0.5 * (1.0 - np.cos(2.0 * np.pi * t / self.period_s)))


@dataclass(frozen=True)
class OverloadStream(ArrivalProcess):
    """A step overload: normal load, then a sustained flood.

    Exercises the "application overloads" responsiveness claim — the
    scheduler should shift to the high-throughput device when the flood
    hits and back when it recedes.
    """

    normal_rate_hz: float = 5.0
    overload_rate_hz: float = 100.0
    overload_start_s: float = 3.0
    overload_end_s: float = 7.0
    normal_batch: int = 32
    overload_batch: int = 8192

    def generate(self, rng=None) -> list[tuple[float, int]]:
        self._check()
        if not (0.0 <= self.overload_start_s < self.overload_end_s):
            raise ValueError("overload window is empty or negative")
        gen = ensure_rng(rng)
        out: list[tuple[float, int]] = []
        t = 0.0
        while t < self.horizon_s:
            overloaded = self.overload_start_s <= t < self.overload_end_s
            rate = self.overload_rate_hz if overloaded else self.normal_rate_hz
            batch = self.overload_batch if overloaded else self.normal_batch
            out.append((t, batch))
            t += float(gen.exponential(1.0 / rate))
        return out
