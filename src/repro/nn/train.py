"""Offline training of workload models (paper §III-B / Fig. 2).

The training phase runs once, offline; the inference phase is what gets
scheduled.  Two optimizers are provided — minibatch SGD with momentum and
Adam — plus softmax cross-entropy, per-epoch validation and early
stopping: enough to train every zoo model on the synthetic datasets so the
weights loaded by the Weights Building module are real, not random.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.activations import softmax
from repro.nn.model import Sequential
from repro.rng import ensure_rng

__all__ = ["TrainConfig", "TrainResult", "cross_entropy", "train_model", "evaluate"]


@dataclass(frozen=True)
class TrainConfig:
    """Hyperparameters for :func:`train_model`."""

    epochs: int = 10
    batch_size: int = 32
    lr: float = 0.05
    momentum: float = 0.9
    lr_decay: float = 1.0  # multiplicative per-epoch decay
    shuffle: bool = True
    optimizer: str = "sgd"          # 'sgd' (momentum) or 'adam'
    beta2: float = 0.999            # Adam second-moment decay
    adam_eps: float = 1e-8
    patience: int | None = None     # early stop after N non-improving epochs

    def __post_init__(self) -> None:
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        if not (0.0 < self.lr):
            raise ValueError(f"lr must be positive, got {self.lr}")
        if not (0.0 <= self.momentum < 1.0):
            raise ValueError(f"momentum must be in [0, 1), got {self.momentum}")
        if self.optimizer not in ("sgd", "adam"):
            raise ValueError(f"optimizer must be 'sgd' or 'adam', got {self.optimizer!r}")
        if not (0.0 <= self.beta2 < 1.0):
            raise ValueError(f"beta2 must be in [0, 1), got {self.beta2}")
        if self.patience is not None and self.patience < 1:
            raise ValueError(f"patience must be >= 1, got {self.patience}")


@dataclass
class TrainResult:
    """Loss/accuracy trajectory of a training run."""

    epoch_losses: list[float] = field(default_factory=list)
    epoch_accuracies: list[float] = field(default_factory=list)
    val_accuracies: list[float] = field(default_factory=list)
    stopped_early: bool = False

    @property
    def final_loss(self) -> float:
        """Last epoch's mean training loss (NaN before training)."""
        return self.epoch_losses[-1] if self.epoch_losses else float("nan")

    @property
    def final_accuracy(self) -> float:
        """Last epoch's training accuracy (NaN before training)."""
        return self.epoch_accuracies[-1] if self.epoch_accuracies else float("nan")


def cross_entropy(logits: np.ndarray, y: np.ndarray) -> tuple[float, np.ndarray]:
    """Softmax cross-entropy loss and its gradient wrt the logits.

    Returns ``(mean_loss, dL/dlogits)``; the gradient is ``(p - onehot)/N``,
    the standard fused softmax+CE form.
    """
    n = logits.shape[0]
    p = softmax(logits)
    idx = (np.arange(n), y)
    loss = float(-np.mean(np.log(np.clip(p[idx], 1e-12, None))))
    grad = p.copy()
    grad[idx] -= 1.0
    grad /= n
    return loss, grad.astype(np.float32)


def train_model(
    model: Sequential,
    x: np.ndarray,
    y: np.ndarray,
    config: TrainConfig | None = None,
    rng: "int | np.random.Generator | None" = None,
    validation: "tuple[np.ndarray, np.ndarray] | None" = None,
) -> TrainResult:
    """Train ``model`` in place; returns the loss/accuracy trajectory.

    ``validation=(x_val, y_val)`` tracks held-out accuracy per epoch and —
    together with ``config.patience`` — stops early once it has not
    improved for ``patience`` epochs (the §II-B overfitting guard).
    """
    cfg = config or TrainConfig()
    gen = ensure_rng(rng)
    x = np.ascontiguousarray(x, dtype=np.float32)
    y = np.asarray(y, dtype=np.int64)
    n = x.shape[0]
    state: dict[str, tuple[np.ndarray, np.ndarray]] = {
        name: (np.zeros_like(p), np.zeros_like(p)) for name, p in model.params()
    }
    result = TrainResult()
    lr = cfg.lr
    step = 0
    best_val, stale = -np.inf, 0
    for _ in range(cfg.epochs):
        order = gen.permutation(n) if cfg.shuffle else np.arange(n)
        losses = []
        for start in range(0, n, cfg.batch_size):
            idx = order[start : start + cfg.batch_size]
            logits = model.forward_train(x[idx])
            loss, grad = cross_entropy(logits, y[idx])
            model.backward(grad)
            step += 1
            params = dict(model.params())
            for name, g in model.grads():
                m, v = state[name]
                if cfg.optimizer == "sgd":
                    m *= cfg.momentum
                    m -= lr * g
                    params[name] += m
                else:  # adam
                    m += (1.0 - cfg.momentum) * (g - m)
                    v += (1.0 - cfg.beta2) * (g * g - v)
                    m_hat = m / (1.0 - cfg.momentum**step)
                    v_hat = v / (1.0 - cfg.beta2**step)
                    params[name] -= lr * m_hat / (np.sqrt(v_hat) + cfg.adam_eps)
            losses.append(loss)
        result.epoch_losses.append(float(np.mean(losses)))
        result.epoch_accuracies.append(evaluate(model, x, y))
        if validation is not None:
            val_acc = evaluate(model, validation[0], validation[1])
            result.val_accuracies.append(val_acc)
            if cfg.patience is not None:
                if val_acc > best_val + 1e-12:
                    best_val, stale = val_acc, 0
                else:
                    stale += 1
                    if stale >= cfg.patience:
                        result.stopped_early = True
                        break
        lr *= cfg.lr_decay
    return result


def evaluate(model: Sequential, x: np.ndarray, y: np.ndarray) -> float:
    """Classification accuracy of ``model`` on ``(x, y)``."""
    pred = model.predict(np.ascontiguousarray(x, dtype=np.float32))
    return float(np.mean(pred == np.asarray(y)))
