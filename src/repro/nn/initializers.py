"""Weight initializers for the workload models.

The paper trains its networks offline (§III-B); we do the same with our own
backprop, so the initial weights matter.  Glorot/He scaling keeps the deep
Mnist-Deep model (six hidden layers) trainable without normalization layers.
"""

from __future__ import annotations

import numpy as np

from repro.rng import ensure_rng

__all__ = ["glorot_uniform", "he_normal", "zeros", "get_initializer"]


def glorot_uniform(
    shape: tuple[int, ...],
    fan_in: int,
    fan_out: int,
    rng: "int | np.random.Generator | None" = None,
) -> np.ndarray:
    """Glorot/Xavier uniform init: U(-limit, limit), limit = sqrt(6/(fi+fo))."""
    gen = ensure_rng(rng)
    limit = np.sqrt(6.0 / float(fan_in + fan_out))
    return gen.uniform(-limit, limit, size=shape).astype(np.float32)


def he_normal(
    shape: tuple[int, ...],
    fan_in: int,
    fan_out: int,
    rng: "int | np.random.Generator | None" = None,
) -> np.ndarray:
    """He normal init: N(0, sqrt(2/fan_in)); the right scale for relu nets."""
    gen = ensure_rng(rng)
    std = np.sqrt(2.0 / float(fan_in))
    return (gen.standard_normal(shape) * std).astype(np.float32)


def zeros(
    shape: tuple[int, ...],
    fan_in: int = 0,
    fan_out: int = 0,
    rng: "int | np.random.Generator | None" = None,
) -> np.ndarray:
    """All-zero init (biases)."""
    return np.zeros(shape, dtype=np.float32)


_REGISTRY = {
    "glorot_uniform": glorot_uniform,
    "he_normal": he_normal,
    "zeros": zeros,
}


def get_initializer(name: str):
    """Look up an initializer function by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown initializer {name!r}; known: {known}") from None
