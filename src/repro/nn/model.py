"""The :class:`Sequential` container used for every workload model.

A Sequential owns an ordered list of layers, propagates shapes at build
time, and exposes the inference API that the OpenCL-style execution layer
dispatches (:meth:`forward` / :meth:`predict`), plus weight import/export in
flat ``dict[str, ndarray]`` form for the Weights Building module (Fig. 2).
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.errors import BuildError, ShapeError
from repro.nn.activations import softmax
from repro.nn.layers import Layer
from repro.rng import ensure_rng

__all__ = ["Sequential"]


class Sequential:
    """Ordered stack of layers with a softmax classification head.

    Parameters
    ----------
    layers:
        Layer instances, applied in order.
    name:
        Identifier used by the zoo / scheduler dataset ("mnist-deep", ...).
    """

    def __init__(self, layers: Iterable[Layer], name: str = "model"):
        self.layers: list[Layer] = list(layers)
        if not self.layers:
            raise BuildError("Sequential needs at least one layer")
        self.name = name
        self.input_shape: tuple[int, ...] | None = None
        self.output_shape: tuple[int, ...] | None = None

    # -- construction -----------------------------------------------------

    def build(
        self,
        input_shape: tuple[int, ...],
        rng: "int | np.random.Generator | None" = None,
    ) -> "Sequential":
        """Propagate ``input_shape`` (sans batch axis) through all layers."""
        gen = ensure_rng(rng)
        shape = tuple(int(s) for s in input_shape)
        self.input_shape = shape
        for layer in self.layers:
            shape = layer.build(shape, gen)
        self.output_shape = shape
        return self

    @property
    def built(self) -> bool:
        """Whether build() has run (shapes propagated, weights allocated)."""
        return self.output_shape is not None

    def _require_built(self) -> None:
        if not self.built:
            raise BuildError(f"model {self.name!r} used before build()")

    # -- inference ---------------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run the network on a batch; returns raw output-layer activations."""
        self._require_built()
        if x.shape[1:] != self.input_shape:
            raise ShapeError(
                f"model {self.name!r} expects input {self.input_shape}, "
                f"got array of shape {x.shape}"
            )
        out = np.ascontiguousarray(x, dtype=np.float32)
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Class probabilities via softmax over the output layer."""
        return softmax(self.forward(x))

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard class labels (argmax)."""
        return np.argmax(self.forward(x), axis=1)

    def confidence(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-sample ``(top-1 probability, top1 - top2 margin)``.

        The two confidence signals a cascade's exit rule can threshold on
        (§ cascades): how sure the model is of its best class, and how far
        ahead that class is of the runner-up.  Both are computed from the
        softmax probabilities of :meth:`predict_proba`.  For a single-class
        head the margin equals the top-1 probability (there is no
        runner-up to subtract).
        """
        proba = self.predict_proba(x)
        if proba.shape[1] < 2:
            top1 = proba[:, 0]
            return top1, top1.copy()
        # Two largest per row without a full sort.
        part = np.partition(proba, -2, axis=1)
        top1 = part[:, -1]
        return top1, top1 - part[:, -2]

    def forward_train(self, x: np.ndarray) -> np.ndarray:
        """Training-mode forward pass retaining per-layer caches."""
        self._require_built()
        out = np.ascontiguousarray(x, dtype=np.float32)
        for layer in self.layers:
            out = layer.forward_train(out)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backpropagate through all layers; returns dL/d(input)."""
        g = grad_out
        for layer in reversed(self.layers):
            g = layer.backward(g)
        return g

    # -- parameters ---------------------------------------------------------

    def params(self) -> Iterator[tuple[str, np.ndarray]]:
        """Yield ``("<i>.<name>", array)`` for all trainable parameters."""
        for i, layer in enumerate(self.layers):
            for name, p in layer.params():
                yield f"{i}.{name}", p

    def grads(self) -> Iterator[tuple[str, np.ndarray]]:
        for i, layer in enumerate(self.layers):
            for name, g in layer.grads():
                yield f"{i}.{name}", g

    @property
    def n_params(self) -> int:
        """Total trainable scalar parameter count."""
        return sum(int(p.size) for _, p in self.params())

    def get_weights(self) -> dict[str, np.ndarray]:
        """Export weights as a flat dict (copies, safe to mutate)."""
        self._require_built()
        return {name: p.copy() for name, p in self.params()}

    def set_weights(self, weights: dict[str, np.ndarray]) -> None:
        """Import weights produced by :meth:`get_weights` (in-place)."""
        self._require_built()
        own = dict(self.params())
        missing = own.keys() - weights.keys()
        extra = weights.keys() - own.keys()
        if missing or extra:
            raise BuildError(
                f"weight dict mismatch for {self.name!r}: "
                f"missing={sorted(missing)}, unexpected={sorted(extra)}"
            )
        for name, p in own.items():
            src = np.asarray(weights[name], dtype=p.dtype)
            if src.shape != p.shape:
                raise ShapeError(
                    f"weight {name!r}: expected shape {p.shape}, got {src.shape}"
                )
            p[...] = src

    def save_weights(self, path) -> None:
        """Persist weights to an ``.npz`` file."""
        np.savez(path, **self.get_weights())

    def load_weights(self, path) -> None:
        """Load weights persisted by :meth:`save_weights`."""
        with np.load(path) as data:
            self.set_weights({k: data[k] for k in data.files})

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(repr(l) for l in self.layers)
        return f"Sequential(name={self.name!r}, layers=[{inner}])"
