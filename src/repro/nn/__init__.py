"""Neural-network inference and training substrate.

This subpackage implements, from scratch on numpy, everything the paper's
workload models need: feed-forward layers, 2-D convolution and max-pooling,
a :class:`~repro.nn.model.Sequential` container, FLOP accounting, minibatch
SGD training, synthetic stand-ins for the Iris/MNIST/CIFAR-10 datasets, and
the model zoo (the five paper models plus the sixteen data-augmentation
architectures of §V-B).

The forward passes here are the *real* computation that the OpenCL-style
execution layer (:mod:`repro.ocl`) dispatches; only timing and power are
simulated.
"""

from repro.nn.activations import ACTIVATIONS, Activation, get_activation
from repro.nn.builders import CNNSpec, FFNNSpec, ModelSpec, build_model
from repro.nn.layers import Conv2D, Dense, Flatten, Layer, MaxPool2D
from repro.nn.model import Sequential
from repro.nn.flops import LayerCost, model_cost
from repro.nn.zoo import (
    AUGMENTATION_SPECS,
    PAPER_MODELS,
    UNSEEN_SPECS,
    get_model_spec,
    list_model_specs,
)

__all__ = [
    "ACTIVATIONS",
    "Activation",
    "get_activation",
    "Layer",
    "Dense",
    "Conv2D",
    "MaxPool2D",
    "Flatten",
    "Sequential",
    "ModelSpec",
    "FFNNSpec",
    "CNNSpec",
    "build_model",
    "LayerCost",
    "model_cost",
    "PAPER_MODELS",
    "AUGMENTATION_SPECS",
    "UNSEEN_SPECS",
    "get_model_spec",
    "list_model_specs",
]
