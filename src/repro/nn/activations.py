"""Activation functions used by the workload models (paper §II-B).

Each activation is a small value object bundling the forward map and its
derivative (in terms of the *pre-activation* input), so the training code in
:mod:`repro.nn.train` can backpropagate without special cases.  All maps are
vectorized numpy ufunc compositions — no Python-level loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

__all__ = ["Activation", "ACTIVATIONS", "get_activation", "softmax"]


@dataclass(frozen=True)
class Activation:
    """A named elementwise nonlinearity with its derivative.

    ``forward`` maps pre-activations ``z`` to activations ``a``;
    ``derivative`` maps ``z`` to ``da/dz`` (elementwise).
    """

    name: str
    forward: Callable[[np.ndarray], np.ndarray] = field(repr=False)
    derivative: Callable[[np.ndarray], np.ndarray] = field(repr=False)

    def __call__(self, z: np.ndarray) -> np.ndarray:
        return self.forward(z)


def _relu(z: np.ndarray) -> np.ndarray:
    return np.maximum(z, 0.0)


def _relu_grad(z: np.ndarray) -> np.ndarray:
    return (z > 0.0).astype(z.dtype)


def _sigmoid(z: np.ndarray) -> np.ndarray:
    # Numerically stable split form: avoids exp overflow for large |z|.
    out = np.empty_like(z, dtype=np.result_type(z.dtype, np.float32))
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


def _sigmoid_grad(z: np.ndarray) -> np.ndarray:
    s = _sigmoid(z)
    return s * (1.0 - s)


def _tanh_grad(z: np.ndarray) -> np.ndarray:
    t = np.tanh(z)
    return 1.0 - t * t

def _identity(z: np.ndarray) -> np.ndarray:
    return z


def _identity_grad(z: np.ndarray) -> np.ndarray:
    return np.ones_like(z)


#: Registry of activations by name.  ``linear`` is the paper's "directly
#: passed at the output" case (y = sum w_j x_j).
ACTIVATIONS: dict[str, Activation] = {
    act.name: act
    for act in (
        Activation("relu", _relu, _relu_grad),
        Activation("sigmoid", _sigmoid, _sigmoid_grad),
        Activation("tanh", np.tanh, _tanh_grad),
        Activation("linear", _identity, _identity_grad),
    )
}


def get_activation(name: "str | Activation") -> Activation:
    """Look up an activation by name (idempotent on Activation instances)."""
    if isinstance(name, Activation):
        return name
    try:
        return ACTIVATIONS[name]
    except KeyError:
        known = ", ".join(sorted(ACTIVATIONS))
        raise KeyError(f"unknown activation {name!r}; known: {known}") from None


def softmax(z: np.ndarray, axis: int = -1) -> np.ndarray:
    """Row-wise softmax with max-subtraction for numerical stability.

    Kept separate from :data:`ACTIVATIONS` because it is not elementwise;
    the output layer combines it with cross-entropy in the loss, where the
    joint gradient is simply ``p - y``.
    """
    shifted = z - np.max(z, axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / np.sum(e, axis=axis, keepdims=True)
