"""Synthetic stand-ins for the paper's training datasets.

The paper trains its workload models on Iris, MNIST and CIFAR-10 (§III-B).
Those datasets are not available offline, so we generate deterministic
synthetic datasets with identical tensor shapes and class counts:

* ``iris``   — 3 Gaussian clusters in 4-D (one linearly inseparable pair),
  like the real Iris versicolor/virginica overlap.
* ``mnist``  — 28x28x1 images of stroke-like class-dependent blob patterns.
* ``cifar10``— 32x32x3 images of class-dependent oriented textures.

Only shapes/dtypes matter to the systems claims (DESIGN.md §2); the
structure here is just enough for our from-scratch training to reach
clearly-above-chance accuracy, proving the inference pipeline end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rng import ensure_rng

__all__ = ["Dataset", "make_iris", "make_mnist", "make_cifar10", "load_dataset"]


@dataclass(frozen=True)
class Dataset:
    """A supervised dataset split into train and test parts."""

    name: str
    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray

    @property
    def n_classes(self) -> int:
        """Number of label classes."""
        return int(self.y_train.max()) + 1

    @property
    def input_shape(self) -> tuple[int, ...]:
        """Per-sample tensor shape (without the batch axis)."""
        return tuple(self.x_train.shape[1:])


def _split(x: np.ndarray, y: np.ndarray, test_frac: float,
           rng: np.random.Generator, name: str) -> Dataset:
    n = x.shape[0]
    order = rng.permutation(n)
    x, y = x[order], y[order]
    n_test = max(1, int(round(n * test_frac)))
    return Dataset(
        name=name,
        x_train=x[n_test:],
        y_train=y[n_test:],
        x_test=x[:n_test],
        y_test=y[:n_test],
    )


def make_iris(
    n_samples: int = 150,
    test_frac: float = 0.2,
    rng: "int | np.random.Generator | None" = None,
) -> Dataset:
    """3-class, 4-feature Gaussian clusters mimicking Iris geometry."""
    gen = ensure_rng(rng)
    per = n_samples // 3
    # Class 0 well separated (setosa); classes 1/2 overlap (versicolor/virginica).
    means = np.array(
        [
            [5.0, 3.4, 1.5, 0.2],
            [5.9, 2.8, 4.3, 1.3],
            [6.6, 3.0, 5.5, 2.0],
        ],
        dtype=np.float32,
    )
    stds = np.array([0.35, 0.30, 0.45], dtype=np.float32)
    xs, ys = [], []
    for cls in range(3):
        n_cls = per if cls < 2 else n_samples - 2 * per
        xs.append(means[cls] + stds[cls] * gen.standard_normal((n_cls, 4)))
        ys.append(np.full(n_cls, cls, dtype=np.int64))
    x = np.concatenate(xs).astype(np.float32)
    y = np.concatenate(ys)
    return _split(x, y, test_frac, gen, "iris")


def _blob_image(h: int, w: int, centers: np.ndarray, sigma: float) -> np.ndarray:
    """Sum of 2-D Gaussian bumps at ``centers`` on an (h, w) grid."""
    yy, xx = np.mgrid[0:h, 0:w].astype(np.float32)
    img = np.zeros((h, w), dtype=np.float32)
    for cy, cx in centers:
        img += np.exp(-((yy - cy) ** 2 + (xx - cx) ** 2) / (2.0 * sigma**2))
    return img


def make_mnist(
    n_samples: int = 2000,
    test_frac: float = 0.2,
    rng: "int | np.random.Generator | None" = None,
) -> Dataset:
    """10-class 28x28x1 stroke-blob images (digit-like spatial structure).

    Each class has a fixed constellation of Gaussian bumps (its "stroke
    pattern"); samples jitter the constellation and add pixel noise.
    """
    gen = ensure_rng(rng)
    h = w = 28
    proto_rng = np.random.default_rng(777)  # class prototypes are fixed
    protos = [proto_rng.uniform(5, 23, size=(3 + cls % 3, 2)) for cls in range(10)]
    x = np.empty((n_samples, h, w, 1), dtype=np.float32)
    y = gen.integers(0, 10, size=n_samples).astype(np.int64)
    for i in range(n_samples):
        centers = protos[y[i]] + gen.normal(0.0, 1.0, size=protos[y[i]].shape)
        img = _blob_image(h, w, centers, sigma=2.2)
        img += 0.05 * gen.standard_normal((h, w)).astype(np.float32)
        x[i, :, :, 0] = img
    x /= max(1e-6, float(np.abs(x).max()))
    return _split(x, y, test_frac, gen, "mnist")


def make_cifar10(
    n_samples: int = 2000,
    test_frac: float = 0.2,
    rng: "int | np.random.Generator | None" = None,
) -> Dataset:
    """10-class 32x32x3 oriented-texture images.

    Each class is a fixed (orientation, frequency, color tint) sinusoidal
    texture; samples add phase jitter and noise.  CNNs pick this up easily
    with small receptive fields, FFNNs struggle — mirroring real CIFAR.
    """
    gen = ensure_rng(rng)
    h = w = 32
    yy, xx = np.mgrid[0:h, 0:w].astype(np.float32)
    proto_rng = np.random.default_rng(778)
    angles = proto_rng.uniform(0, np.pi, size=10)
    freqs = proto_rng.uniform(0.2, 0.9, size=10)
    tints = proto_rng.uniform(0.3, 1.0, size=(10, 3)).astype(np.float32)
    x = np.empty((n_samples, h, w, 3), dtype=np.float32)
    y = gen.integers(0, 10, size=n_samples).astype(np.int64)
    for i in range(n_samples):
        cls = y[i]
        phase = gen.uniform(0, 2 * np.pi)
        grating = np.sin(
            freqs[cls] * (np.cos(angles[cls]) * xx + np.sin(angles[cls]) * yy) + phase
        ).astype(np.float32)
        img = grating[:, :, None] * tints[cls][None, None, :]
        img += 0.15 * gen.standard_normal((h, w, 3)).astype(np.float32)
        x[i] = img
    x /= max(1e-6, float(np.abs(x).max()))
    return _split(x, y, test_frac, gen, "cifar10")


_LOADERS = {"iris": make_iris, "mnist": make_mnist, "cifar10": make_cifar10}


def load_dataset(
    name: str,
    n_samples: int | None = None,
    rng: "int | np.random.Generator | None" = None,
) -> Dataset:
    """Load a synthetic dataset by name ('iris', 'mnist', 'cifar10')."""
    try:
        loader = _LOADERS[name]
    except KeyError:
        known = ", ".join(sorted(_LOADERS))
        raise KeyError(f"unknown dataset {name!r}; known: {known}") from None
    if n_samples is None:
        return loader(rng=rng)
    return loader(n_samples=n_samples, rng=rng)
