"""Model-spec (de)serialization: specs as JSON-able dicts.

The dispatcher pipeline (Fig. 2) is spec-driven, so configuration files
and cross-process hand-offs need a stable textual form.  Round-trips are
exact: ``spec_from_dict(spec_to_dict(s)) == s``.
"""

from __future__ import annotations

import json

from repro.errors import BuildError
from repro.nn.builders import CNNSpec, FFNNSpec, ModelSpec

__all__ = ["spec_to_dict", "spec_from_dict", "spec_to_json", "spec_from_json"]


def spec_to_dict(spec: ModelSpec) -> dict:
    """Serialize a spec to a plain dict (JSON-compatible values only)."""
    if isinstance(spec, FFNNSpec):
        return {
            "family": "ffnn",
            "name": spec.name,
            "input_shape": list(spec.input_shape),
            "n_classes": spec.n_classes,
            "hidden_layers": list(spec.hidden_layers),
            "activation": spec.activation,
        }
    if isinstance(spec, CNNSpec):
        return {
            "family": "cnn",
            "name": spec.name,
            "input_shape": list(spec.input_shape),
            "n_classes": spec.n_classes,
            "vgg_blocks": spec.vgg_blocks,
            "convs_per_block": spec.convs_per_block,
            "filters": spec.filters,
            "filter_size": spec.filter_size,
            "pool_size": spec.pool_size,
            "dense_layers": list(spec.dense_layers),
            "activation": spec.activation,
            "padding": spec.padding,
        }
    raise BuildError(f"cannot serialize spec of type {type(spec).__name__}")


def spec_from_dict(payload: dict) -> ModelSpec:
    """Rebuild a spec from :func:`spec_to_dict` output (validating)."""
    try:
        family = payload["family"]
    except (TypeError, KeyError):
        raise BuildError("spec payload missing 'family'") from None
    if family not in ("ffnn", "cnn"):
        raise BuildError(f"unknown spec family {family!r}")
    data = {k: v for k, v in payload.items() if k != "family"}
    try:
        data["input_shape"] = tuple(data["input_shape"])
        if family == "ffnn":
            data["hidden_layers"] = tuple(data["hidden_layers"])
            return FFNNSpec(**data)
        data["dense_layers"] = tuple(data["dense_layers"])
        return CNNSpec(**data)
    except (KeyError, TypeError) as exc:
        raise BuildError(f"malformed {family} spec payload: {exc}") from exc


def spec_to_json(spec: ModelSpec) -> str:
    """Serialize a spec to a JSON string."""
    return json.dumps(spec_to_dict(spec), sort_keys=True)


def spec_from_json(text: str) -> ModelSpec:
    """Rebuild a spec from :func:`spec_to_json` output."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise BuildError(f"invalid spec JSON: {exc}") from exc
    return spec_from_dict(payload)
