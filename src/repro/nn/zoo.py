"""Model zoo: the paper's workload models and augmentation architectures.

Three groups (paper §III-B and §V-B):

* :data:`PAPER_MODELS` — the five benchmarked models: Simple (Iris),
  Mnist-Small, Mnist-Deep, Mnist-CNN and Cifar-10.
* :data:`AUGMENTATION_SPECS` — the sixteen extra architectures measured to
  augment the scheduler's training set; eight FFNNs sweeping depth and
  width, eight CNNs sweeping VGG-block count, convolutions per block,
  filter size and pooling size (the four CNN parameters §V-B names).
* :data:`UNSEEN_SPECS` — architectures excluded from scheduler training,
  used for the "models never seen before" evaluation (Fig. 6, 91%).

Mnist-Deep follows the paper's stated formation 784-2500-2000-1500-1000-500
read as the six hidden layers ("a feed-forward neural network with six
hidden layers, of the following formation"); Mnist-Small takes "the first
layer consists of 784 nodes, while the second consists of 800" as its two
hidden layers.
"""

from __future__ import annotations

from repro.nn.builders import CNNSpec, FFNNSpec, ModelSpec

__all__ = [
    "SIMPLE",
    "MNIST_SMALL",
    "MNIST_DEEP",
    "MNIST_CNN",
    "CIFAR10",
    "PAPER_MODELS",
    "AUGMENTATION_SPECS",
    "UNSEEN_SPECS",
    "ALL_SPECS",
    "get_model_spec",
    "list_model_specs",
]

_IRIS_IN = (4,)
_MNIST_IN_FLAT = (784,)
_MNIST_IN_IMG = (28, 28, 1)
_CIFAR_IN = (32, 32, 3)

#: §III-B1 — two hidden layers of six nodes, Iris (4 features, 3 classes).
SIMPLE = FFNNSpec(
    name="simple", input_shape=_IRIS_IN, n_classes=3, hidden_layers=(6, 6)
)

#: §III-B2 — two hidden layers (784, 800), 10-class output.
MNIST_SMALL = FFNNSpec(
    name="mnist-small",
    input_shape=_MNIST_IN_FLAT,
    n_classes=10,
    hidden_layers=(784, 800),
)

#: §III-B3 — six hidden layers 784-2500-2000-1500-1000-500.
MNIST_DEEP = FFNNSpec(
    name="mnist-deep",
    input_shape=_MNIST_IN_FLAT,
    n_classes=10,
    hidden_layers=(784, 2500, 2000, 1500, 1000, 500),
)

#: §III-B4 — two VGG blocks (1 conv each, 3x3x32 filters, 2x2 pool), dense 128.
MNIST_CNN = CNNSpec(
    name="mnist-cnn",
    input_shape=_MNIST_IN_IMG,
    n_classes=10,
    vgg_blocks=2,
    convs_per_block=1,
    filters=32,
    filter_size=3,
    pool_size=2,
    dense_layers=(128,),
)

#: §III-B5 — three VGG blocks (2 convs each, 3x3x32, 2x2 pool), dense 128.
CIFAR10 = CNNSpec(
    name="cifar-10",
    input_shape=_CIFAR_IN,
    n_classes=10,
    vgg_blocks=3,
    convs_per_block=2,
    filters=32,
    filter_size=3,
    pool_size=2,
    dense_layers=(128,),
)

PAPER_MODELS: tuple[ModelSpec, ...] = (
    SIMPLE,
    MNIST_SMALL,
    MNIST_DEEP,
    MNIST_CNN,
    CIFAR10,
)


def _ffnn(name: str, hidden: tuple[int, ...], inp=_MNIST_IN_FLAT, classes=10) -> FFNNSpec:
    return FFNNSpec(name=name, input_shape=inp, n_classes=classes, hidden_layers=hidden)


def _cnn(name: str, blocks: int, convs: int, filt: int, pool: int,
         inp=_CIFAR_IN, filters: int = 32) -> CNNSpec:
    return CNNSpec(
        name=name,
        input_shape=inp,
        n_classes=10,
        vgg_blocks=blocks,
        convs_per_block=convs,
        filters=filters,
        filter_size=filt,
        pool_size=pool,
        dense_layers=(128,),
    )


#: The sixteen augmentation architectures (§V-B): with each we capture how a
#: single structural parameter moves the sustained metrics.
AUGMENTATION_SPECS: tuple[ModelSpec, ...] = (
    # -- FFNN depth sweep (constant-ish width) ---------------------------
    _ffnn("aug-ffnn-depth1", (512,)),
    _ffnn("aug-ffnn-depth3", (512, 512, 512)),
    _ffnn("aug-ffnn-depth8", (512,) * 8),
    _ffnn("aug-ffnn-depth12", (256,) * 12),
    # -- FFNN width sweep (constant depth 2) -----------------------------
    _ffnn("aug-ffnn-tiny", (16, 16), inp=(16,), classes=4),
    _ffnn("aug-ffnn-narrow", (64, 64)),
    _ffnn("aug-ffnn-wide", (2048, 2048)),
    _ffnn("aug-ffnn-huge", (4096, 4096)),
    # -- CNN block-count sweep -------------------------------------------
    _cnn("aug-cnn-blocks1", blocks=1, convs=1, filt=3, pool=2),
    _cnn("aug-cnn-blocks2", blocks=2, convs=1, filt=3, pool=2),
    _cnn("aug-cnn-blocks4", blocks=4, convs=1, filt=3, pool=2),
    # -- CNN convs-per-block sweep ----------------------------------------
    _cnn("aug-cnn-convs2", blocks=2, convs=2, filt=3, pool=2),
    _cnn("aug-cnn-convs3", blocks=2, convs=3, filt=3, pool=2),
    # -- CNN filter-size sweep ---------------------------------------------
    _cnn("aug-cnn-filter5", blocks=2, convs=1, filt=5, pool=2),
    _cnn("aug-cnn-filter7", blocks=2, convs=1, filt=7, pool=2),
    # -- CNN pooling-size sweep ---------------------------------------------
    _cnn("aug-cnn-pool4", blocks=2, convs=1, filt=3, pool=4),
)

#: Hold-out architectures for the unseen-model evaluation (Fig. 6).  They
#: interpolate/extrapolate the training sweeps without duplicating any spec.
UNSEEN_SPECS: tuple[ModelSpec, ...] = (
    _ffnn("unseen-ffnn-mid", (1024, 1024, 512)),
    _ffnn("unseen-ffnn-deep", (384,) * 10),
    _cnn("unseen-cnn-mixed", blocks=3, convs=1, filt=5, pool=2),
    _cnn("unseen-cnn-heavy", blocks=2, convs=2, filt=3, pool=2, filters=48),
)

ALL_SPECS: tuple[ModelSpec, ...] = PAPER_MODELS + AUGMENTATION_SPECS + UNSEEN_SPECS

_BY_NAME = {spec.name: spec for spec in ALL_SPECS}
if len(_BY_NAME) != len(ALL_SPECS):  # pragma: no cover - import-time invariant
    raise RuntimeError("duplicate model names in zoo")


def get_model_spec(name: str) -> ModelSpec:
    """Look up any zoo spec by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown model {name!r}; known: {known}") from None


def list_model_specs(group: str = "all") -> tuple[ModelSpec, ...]:
    """List zoo specs by group: 'paper', 'augmentation', 'unseen' or 'all'."""
    groups = {
        "paper": PAPER_MODELS,
        "augmentation": AUGMENTATION_SPECS,
        "unseen": UNSEEN_SPECS,
        "training": PAPER_MODELS + AUGMENTATION_SPECS,
        "all": ALL_SPECS,
    }
    try:
        return groups[group]
    except KeyError:
        raise KeyError(
            f"unknown group {group!r}; known: {', '.join(sorted(groups))}"
        ) from None
