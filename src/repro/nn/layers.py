"""Layers for the paper's two network families (FFNN and CNN, §II-B).

Design notes
------------
* Batch-major layout: dense inputs are ``(N, features)``; image inputs are
  ``(N, H, W, C)`` ("row-major per sample" — the access order the paper
  settles on in §IV-B after finding transposition not worth it).
* Convolution is implemented with an im2col gather followed by a single
  GEMM — the standard way to make conv fast in pure numpy, and the same
  dataflow the paper's OpenCL kernel uses (all filters of a layer computed
  in parallel as one matrix product).
* Every layer supports both ``forward`` (inference, no state retained) and
  ``forward_train``/``backward`` (training with cached intermediates), so
  the zoo models are trained with real gradients rather than shipped with
  random weights.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import ShapeError
from repro.nn.activations import Activation, get_activation
from repro.nn.initializers import get_initializer, zeros

__all__ = ["Layer", "Dense", "Conv2D", "MaxPool2D", "Flatten", "im2col_indices"]


class Layer:
    """Abstract layer: shape propagation, parameters, forward/backward."""

    #: Human-readable type tag used in reprs and FLOP reports.
    kind: str = "layer"

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> tuple[int, ...]:
        """Allocate parameters for ``input_shape`` (without the batch axis).

        Returns the output shape (without the batch axis).  Must be called
        exactly once before ``forward``.
        """
        raise NotImplementedError

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Inference pass; does not retain intermediates."""
        raise NotImplementedError

    def forward_train(self, x: np.ndarray) -> np.ndarray:
        """Training pass; caches what ``backward`` needs."""
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backprop ``dL/d(output)`` to ``dL/d(input)``; stores param grads."""
        raise NotImplementedError

    def params(self) -> Iterator[tuple[str, np.ndarray]]:
        """Yield ``(name, array)`` for each trainable parameter."""
        return iter(())

    def grads(self) -> Iterator[tuple[str, np.ndarray]]:
        """Yield ``(name, array)`` gradients matching :meth:`params` order."""
        return iter(())

    @property
    def n_params(self) -> int:
        """Total trainable scalar parameters."""
        return sum(int(p.size) for _, p in self.params())

    def _check_built(self) -> None:
        if getattr(self, "output_shape", None) is None:
            raise ShapeError(f"{type(self).__name__} used before build()")


class Dense(Layer):
    """Fully-connected layer: ``y = act(x @ W + b)``.

    This is the perceptron-layer of §II-B1: each output node aggregates the
    weighted inputs, optionally through relu/tanh/sigmoid.
    """

    kind = "dense"

    def __init__(self, units: int, activation: "str | Activation" = "relu",
                 kernel_init: str = "he_normal"):
        if units <= 0:
            raise ValueError(f"units must be positive, got {units}")
        self.units = int(units)
        self.activation = get_activation(activation)
        self._init_name = kernel_init
        self.w: np.ndarray | None = None
        self.b: np.ndarray | None = None
        self.dw: np.ndarray | None = None
        self.db: np.ndarray | None = None
        self.input_shape: tuple[int, ...] | None = None
        self.output_shape: tuple[int, ...] | None = None
        self._cache: tuple[np.ndarray, np.ndarray] | None = None

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> tuple[int, ...]:
        if len(input_shape) != 1:
            raise ShapeError(
                f"Dense expects flat input, got shape {input_shape}; add Flatten first"
            )
        fan_in = int(input_shape[0])
        init = get_initializer(self._init_name)
        self.w = init((fan_in, self.units), fan_in, self.units, rng)
        self.b = zeros((self.units,))
        self.input_shape = input_shape
        self.output_shape = (self.units,)
        return self.output_shape

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._check_built()
        return self.activation(x @ self.w + self.b)

    def forward_train(self, x: np.ndarray) -> np.ndarray:
        self._check_built()
        z = x @ self.w + self.b
        self._cache = (x, z)
        return self.activation(z)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ShapeError("backward() before forward_train()")
        x, z = self._cache
        dz = grad_out * self.activation.derivative(z)
        self.dw = x.T @ dz
        self.db = dz.sum(axis=0)
        self._cache = None
        return dz @ self.w.T

    def params(self) -> Iterator[tuple[str, np.ndarray]]:
        if self.w is not None:
            yield "w", self.w
            yield "b", self.b

    def grads(self) -> Iterator[tuple[str, np.ndarray]]:
        if self.dw is not None:
            yield "w", self.dw
            yield "b", self.db

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dense(units={self.units}, activation={self.activation.name!r})"


def im2col_indices(
    h: int, w: int, kh: int, kw: int, stride: int = 1
) -> tuple[np.ndarray, np.ndarray]:
    """Return (row, col) gather indices for an im2col of a (H, W) plane.

    Output arrays have shape ``(out_h*out_w, kh*kw)``; indexing an image
    ``img[rows, cols]`` yields every receptive field as a row — the gather
    that turns convolution into a GEMM.
    """
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ShapeError(f"kernel ({kh}x{kw}) larger than input ({h}x{w})")
    # Top-left corner of each receptive field.
    base_r = stride * np.repeat(np.arange(out_h), out_w)
    base_c = stride * np.tile(np.arange(out_w), out_h)
    # Offsets within a receptive field.
    off_r = np.repeat(np.arange(kh), kw)
    off_c = np.tile(np.arange(kw), kh)
    rows = base_r[:, None] + off_r[None, :]
    cols = base_c[:, None] + off_c[None, :]
    return rows, cols


class Conv2D(Layer):
    """Valid (unpadded) 2-D convolution with ``filters`` output channels.

    The paper's CNN kernels use 3x3 filters exclusively; this layer is
    general over square/rectangular kernels and strides.  Implementation is
    im2col + one GEMM per batch, vectorized over samples and filters.
    """

    kind = "conv2d"

    def __init__(self, filters: int, kernel_size: int = 3,
                 activation: "str | Activation" = "relu", stride: int = 1,
                 padding: str = "valid", kernel_init: str = "he_normal"):
        if filters <= 0:
            raise ValueError(f"filters must be positive, got {filters}")
        if kernel_size <= 0:
            raise ValueError(f"kernel_size must be positive, got {kernel_size}")
        if stride <= 0:
            raise ValueError(f"stride must be positive, got {stride}")
        if padding not in ("valid", "same"):
            raise ValueError(f"padding must be 'valid' or 'same', got {padding!r}")
        self.filters = int(filters)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.padding = padding
        self._pad: tuple[int, int] = (0, 0)
        self.activation = get_activation(activation)
        self._init_name = kernel_init
        self.w: np.ndarray | None = None  # (kh*kw*C_in, filters)
        self.b: np.ndarray | None = None
        self.dw: np.ndarray | None = None
        self.db: np.ndarray | None = None
        self.input_shape: tuple[int, ...] | None = None
        self.output_shape: tuple[int, ...] | None = None
        self._rows: np.ndarray | None = None
        self._cols: np.ndarray | None = None
        self._cache: tuple[np.ndarray, np.ndarray] | None = None

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> tuple[int, ...]:
        if len(input_shape) != 3:
            raise ShapeError(f"Conv2D expects (H, W, C) input, got {input_shape}")
        h, w, c_in = map(int, input_shape)
        k = self.kernel_size
        if self.padding == "same":
            # Symmetric-ish zero pad so out = ceil(in / stride); for the
            # stride-1 3x3 case this is one pixel each side, as in VGG.
            pad_total = k - 1
            self._pad = (pad_total // 2, pad_total - pad_total // 2)
        ph = h + self._pad[0] + self._pad[1]
        pw = w + self._pad[0] + self._pad[1]
        self._rows, self._cols = im2col_indices(ph, pw, k, k, self.stride)
        out_h = (ph - k) // self.stride + 1
        out_w = (pw - k) // self.stride + 1
        fan_in = k * k * c_in
        fan_out = k * k * self.filters
        init = get_initializer(self._init_name)
        self.w = init((fan_in, self.filters), fan_in, fan_out, rng)
        self.b = zeros((self.filters,))
        self.input_shape = (h, w, c_in)
        self.output_shape = (out_h, out_w, self.filters)
        return self.output_shape

    def _padded(self, x: np.ndarray) -> np.ndarray:
        if self._pad == (0, 0):
            return x
        lo, hi = self._pad
        return np.pad(x, ((0, 0), (lo, hi), (lo, hi), (0, 0)))

    def _im2col(self, x: np.ndarray) -> np.ndarray:
        """(N, H, W, C) -> (N, out_h*out_w, kh*kw*C) patch matrix."""
        # Gather: x[:, rows, cols, :] has shape (N, P, K, C) where
        # P = out_h*out_w and K = kh*kw; reshape merges (K, C) -> features.
        patches = self._padded(x)[:, self._rows, self._cols, :]
        n, p, k, c = patches.shape
        return patches.reshape(n, p, k * c)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._check_built()
        self._validate_input(x)
        cols = self._im2col(x)
        z = cols @ self.w + self.b
        out_h, out_w, f = self.output_shape
        return self.activation(z).reshape(x.shape[0], out_h, out_w, f)

    def forward_train(self, x: np.ndarray) -> np.ndarray:
        self._check_built()
        self._validate_input(x)
        cols = self._im2col(x)
        z = cols @ self.w + self.b
        self._cache = (x, z)
        out_h, out_w, f = self.output_shape
        return self.activation(z).reshape(x.shape[0], out_h, out_w, f)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ShapeError("backward() before forward_train()")
        x, z = self._cache
        n = x.shape[0]
        out_h, out_w, f = self.output_shape
        dz = grad_out.reshape(n, out_h * out_w, f) * self.activation.derivative(z)
        cols = self._im2col(x)
        # (F, P·N) x (P·N, K·C): accumulate over batch and positions.
        self.dw = np.einsum("npk,npf->kf", cols, dz, optimize=True)
        self.db = dz.sum(axis=(0, 1))
        # Scatter-add dcols back to the (padded) input image positions.
        dcols = dz @ self.w.T  # (N, P, K*C)
        h, w, c = self.input_shape
        k2 = self.kernel_size * self.kernel_size
        dcols = dcols.reshape(n, -1, k2, c)
        lo, hi = self._pad
        dx_pad = np.zeros((n, h + lo + hi, w + lo + hi, c), dtype=x.dtype)
        np.add.at(dx_pad, (slice(None), self._rows, self._cols, slice(None)), dcols)
        dx = dx_pad[:, lo : lo + h, lo : lo + w, :] if (lo or hi) else dx_pad
        self._cache = None
        return dx

    def _validate_input(self, x: np.ndarray) -> None:
        if x.ndim != 4 or x.shape[1:] != self.input_shape:
            raise ShapeError(
                f"Conv2D built for input {self.input_shape}, got array of shape {x.shape}"
            )

    def params(self) -> Iterator[tuple[str, np.ndarray]]:
        if self.w is not None:
            yield "w", self.w
            yield "b", self.b

    def grads(self) -> Iterator[tuple[str, np.ndarray]]:
        if self.dw is not None:
            yield "w", self.dw
            yield "b", self.db

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Conv2D(filters={self.filters}, kernel_size={self.kernel_size}, "
            f"activation={self.activation.name!r})"
        )


class MaxPool2D(Layer):
    """Non-overlapping max pooling (pool == stride), as in every VGG block."""

    kind = "maxpool2d"

    def __init__(self, pool_size: int = 2):
        if pool_size <= 0:
            raise ValueError(f"pool_size must be positive, got {pool_size}")
        self.pool_size = int(pool_size)
        self.input_shape: tuple[int, ...] | None = None
        self.output_shape: tuple[int, ...] | None = None
        self._cache: tuple[np.ndarray, np.ndarray] | None = None

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> tuple[int, ...]:
        if len(input_shape) != 3:
            raise ShapeError(f"MaxPool2D expects (H, W, C) input, got {input_shape}")
        h, w, c = map(int, input_shape)
        p = self.pool_size
        if h < p or w < p:
            raise ShapeError(f"pool {p}x{p} larger than input {h}x{w}")
        self.input_shape = (h, w, c)
        self.output_shape = (h // p, w // p, c)
        return self.output_shape

    def _window_view(self, x: np.ndarray) -> np.ndarray:
        """Trim to a multiple of pool and reshape to expose pool windows."""
        p = self.pool_size
        oh, ow, c = self.output_shape
        trimmed = x[:, : oh * p, : ow * p, :]
        return trimmed.reshape(x.shape[0], oh, p, ow, p, c)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._check_built()
        return self._window_view(x).max(axis=(2, 4))

    def forward_train(self, x: np.ndarray) -> np.ndarray:
        self._check_built()
        windows = self._window_view(x)
        out = windows.max(axis=(2, 4))
        self._cache = (x, out)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ShapeError("backward() before forward_train()")
        x, out = self._cache
        p = self.pool_size
        oh, ow, c = self.output_shape
        windows = self._window_view(x)
        # Route gradient to argmax positions (ties split the gradient; with
        # float activations ties have measure zero so this matches argmax).
        mask = windows == out[:, :, None, :, None, :]
        counts = mask.sum(axis=(2, 4), keepdims=True)
        g = grad_out[:, :, None, :, None, :] * mask / counts
        dx = np.zeros_like(x)
        dx[:, : oh * p, : ow * p, :] = g.reshape(x.shape[0], oh * p, ow * p, c)
        self._cache = None
        return dx

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MaxPool2D(pool_size={self.pool_size})"


class Flatten(Layer):
    """Flatten per-sample tensors to vectors (the CNN->FFNN junction)."""

    kind = "flatten"

    def __init__(self) -> None:
        self.input_shape: tuple[int, ...] | None = None
        self.output_shape: tuple[int, ...] | None = None

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> tuple[int, ...]:
        self.input_shape = tuple(map(int, input_shape))
        self.output_shape = (int(np.prod(input_shape)),)
        return self.output_shape

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._check_built()
        return x.reshape(x.shape[0], -1)

    forward_train = forward

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        self._check_built()
        return grad_out.reshape(grad_out.shape[0], *self.input_shape)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "Flatten()"
