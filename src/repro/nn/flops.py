"""Analytical FLOP / byte accounting per model spec.

The execution-time cost model (:mod:`repro.hw.costmodel`) is a roofline: it
needs, per inference sample, the floating-point work and the memory traffic.
Both are computed symbolically from the :class:`~repro.nn.builders.ModelSpec`
so the scheduler's characterization sweep never has to instantiate weights
to estimate cost (mirroring how the paper's features are purely structural).

Conventions: one multiply-accumulate = 2 FLOPs; activations cost 1 FLOP per
element; max-pooling costs 1 compare per window element.  Memory traffic
counts each parameter once and each activation tensor once (write) plus
once (read by the next layer) — the streaming lower bound a cache-resident
GEMM achieves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import BuildError
from repro.nn.builders import CNNSpec, FFNNSpec, ModelSpec

__all__ = ["LayerCost", "ModelCost", "model_cost"]

_DTYPE_BYTES = 4  # float32 everywhere, matching the paper's int4/float4 vectors


@dataclass(frozen=True)
class LayerCost:
    """Per-sample cost of a single layer."""

    name: str
    flops: float
    activation_elems: float  # output tensor elements
    param_elems: float       # weights + biases
    launches: int = 1        # kernel enqueues (conv: one per filter, §IV-B)

    @property
    def param_bytes(self) -> float:
        return self.param_elems * _DTYPE_BYTES

    @property
    def activation_bytes(self) -> float:
        """Bytes of this layer's output tensor (float32)."""
        return self.activation_elems * _DTYPE_BYTES


@dataclass(frozen=True)
class ModelCost:
    """Aggregate per-sample cost of a model."""

    spec_name: str
    layers: tuple[LayerCost, ...]

    @property
    def flops_per_sample(self) -> float:
        """Total floating-point operations per classified sample."""
        return float(sum(l.flops for l in self.layers))

    @property
    def param_bytes(self) -> float:
        return float(sum(l.param_bytes for l in self.layers))

    @property
    def activation_bytes_per_sample(self) -> float:
        """Intermediate tensor traffic per sample (written once, read once)."""
        return float(sum(2.0 * l.activation_bytes for l in self.layers))

    @property
    def total_launches(self) -> int:
        """Kernel enqueues per classification (batch-independent).

        The paper's decomposition (§IV-B) computes "all the convolution
        operations of a single filter" per enqueue, so a convolution layer
        costs one enqueue per filter; dense and pooling layers cost one.
        """
        return int(sum(l.launches for l in self.layers))

    def bytes_per_sample(self, batch: int) -> float:
        """Memory traffic per sample at a given batch size.

        Parameters are shared across the batch, so their traffic amortizes
        as ``param_bytes / batch`` (they are streamed once per batch when
        the batch fits the reuse pattern of the GEMM).
        """
        if batch <= 0:
            raise ValueError(f"batch must be positive, got {batch}")
        return self.activation_bytes_per_sample + self.param_bytes / float(batch)


def _dense_cost(name: str, fan_in: int, units: int) -> LayerCost:
    flops = 2.0 * fan_in * units + units  # MACs + activation
    return LayerCost(name, flops, float(units), float(fan_in * units + units))


def _ffnn_cost(spec: FFNNSpec) -> tuple[LayerCost, ...]:
    layers: list[LayerCost] = []
    fan_in = int(spec.input_shape[0])
    for i, units in enumerate(spec.hidden_layers):
        layers.append(_dense_cost(f"dense_{i}", fan_in, int(units)))
        fan_in = int(units)
    layers.append(_dense_cost("output", fan_in, spec.n_classes))
    return tuple(layers)


def _cnn_cost(spec: CNNSpec) -> tuple[LayerCost, ...]:
    layers: list[LayerCost] = []
    h, w, c = map(int, spec.input_shape)
    k, f, p = spec.filter_size, spec.filters, spec.pool_size
    shrink = 0 if spec.padding == "same" else k - 1
    for b in range(spec.vgg_blocks):
        for cv in range(spec.convs_per_block):
            oh, ow = h - shrink, w - shrink
            macs = oh * ow * f * k * k * c
            out_elems = oh * ow * f
            layers.append(
                LayerCost(
                    f"block{b}_conv{cv}",
                    2.0 * macs + out_elems,
                    float(out_elems),
                    float(k * k * c * f + f),
                    launches=f,
                )
            )
            h, w, c = oh, ow, f
        oh, ow = h // p, w // p
        layers.append(
            LayerCost(f"block{b}_pool", float(oh * ow * c * p * p), float(oh * ow * c), 0.0)
        )
        h, w = oh, ow
    fan_in = h * w * c
    for i, units in enumerate(spec.dense_layers):
        layers.append(_dense_cost(f"dense_{i}", fan_in, int(units)))
        fan_in = int(units)
    layers.append(_dense_cost("output", fan_in, spec.n_classes))
    return tuple(layers)


def model_cost(spec: ModelSpec) -> ModelCost:
    """Compute the per-sample analytical cost of a model spec."""
    if isinstance(spec, FFNNSpec):
        return ModelCost(spec.name, _ffnn_cost(spec))
    if isinstance(spec, CNNSpec):
        return ModelCost(spec.name, _cnn_cost(spec))
    raise BuildError(f"unknown spec type {type(spec).__name__}")
