"""Model specifications and the Model Building module (paper Fig. 2).

The paper describes training as spec-driven: "For FFNNs, we pass the depth
of the neural network, together with the number of nodes of each layer and
the activation functions.  For CNNs we also give the size and the number of
filters of the convolutions, the size of the pooling, ... and finally the
description of the FFNN."  :class:`FFNNSpec` and :class:`CNNSpec` are those
descriptions; :func:`build_model` is the Model Building module that turns a
spec into a runnable :class:`~repro.nn.model.Sequential`.

Specs are also the *feature source* for the scheduler (§V-B): an FFNN is
summarized by (depth, total neurons) and a CNN additionally by (number of
VGG blocks, convolutions per block, filter size, pooling size).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import BuildError
from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D
from repro.nn.model import Sequential

__all__ = ["ModelSpec", "FFNNSpec", "CNNSpec", "build_model"]


@dataclass(frozen=True)
class ModelSpec:
    """Common spec fields shared by both network families."""

    name: str
    input_shape: tuple[int, ...]
    n_classes: int

    @property
    def family(self) -> str:
        """'ffnn' or 'cnn'."""
        raise NotImplementedError

    @property
    def sample_bytes(self) -> int:
        """Bytes of one float32 input sample (drives Gbit/s accounting)."""
        return int(np.prod(self.input_shape)) * 4

    def __post_init__(self) -> None:
        if self.n_classes < 2:
            raise BuildError(f"{self.name}: need >= 2 classes, got {self.n_classes}")
        if not self.input_shape or any(int(s) <= 0 for s in self.input_shape):
            raise BuildError(f"{self.name}: bad input shape {self.input_shape}")


@dataclass(frozen=True)
class FFNNSpec(ModelSpec):
    """A feed-forward network: input -> hidden layers -> softmax output.

    ``hidden_layers`` lists the node counts, e.g. Mnist-Deep is
    ``(2500, 2000, 1500, 1000, 500)``.
    """

    hidden_layers: tuple[int, ...] = ()
    activation: str = "relu"

    def __post_init__(self) -> None:
        super().__post_init__()
        if len(self.input_shape) != 1:
            raise BuildError(
                f"{self.name}: FFNN input must be flat, got {self.input_shape}"
            )
        if any(int(h) <= 0 for h in self.hidden_layers):
            raise BuildError(f"{self.name}: bad hidden layers {self.hidden_layers}")

    @property
    def family(self) -> str:
        """'ffnn' or 'cnn'."""
        return "ffnn"

    @property
    def depth(self) -> int:
        """Number of hidden layers — the first scheduler feature (§V-B)."""
        return len(self.hidden_layers)

    @property
    def total_neurons(self) -> int:
        """Total neuron count — the second scheduler feature (§V-B)."""
        return int(sum(self.hidden_layers)) + self.n_classes


@dataclass(frozen=True)
class CNNSpec(ModelSpec):
    """A VGG-block CNN followed by a dense head.

    A "VGG block" (§II-B2) is ``convs_per_block`` convolution layers
    followed by one max-pooling layer; ``vgg_blocks`` of them are stacked,
    then flattened into ``dense_layers`` and the softmax output.
    """

    vgg_blocks: int = 2
    convs_per_block: int = 1
    filters: int = 32
    filter_size: int = 3
    pool_size: int = 2
    dense_layers: tuple[int, ...] = (128,)
    activation: str = "relu"
    padding: str = "same"

    def __post_init__(self) -> None:
        super().__post_init__()
        if len(self.input_shape) != 3:
            raise BuildError(
                f"{self.name}: CNN input must be (H, W, C), got {self.input_shape}"
            )
        for label, v in (
            ("vgg_blocks", self.vgg_blocks),
            ("convs_per_block", self.convs_per_block),
            ("filters", self.filters),
            ("filter_size", self.filter_size),
            ("pool_size", self.pool_size),
        ):
            if int(v) <= 0:
                raise BuildError(f"{self.name}: {label} must be positive, got {v}")
        if self.padding not in ("valid", "same"):
            raise BuildError(f"{self.name}: bad padding {self.padding!r}")
        # Check the spatial extent survives all blocks.
        for h, w in (self.spatial_extents(),):
            if h <= 0 or w <= 0:
                raise BuildError(
                    f"{self.name}: spatial extent collapses before "
                    f"{self.vgg_blocks} blocks complete"
                )

    def spatial_extents(self) -> tuple[int, int]:
        """Spatial (H, W) after all VGG blocks (0 if the stack collapses)."""
        h, w = int(self.input_shape[0]), int(self.input_shape[1])
        shrink = 0 if self.padding == "same" else self.filter_size - 1
        for _ in range(self.vgg_blocks):
            for _ in range(self.convs_per_block):
                h -= shrink
                w -= shrink
            h //= self.pool_size
            w //= self.pool_size
            if h <= 0 or w <= 0:
                return 0, 0
        return h, w

    @property
    def family(self) -> str:
        """'ffnn' or 'cnn'."""
        return "cnn"

    @property
    def depth(self) -> int:
        """Layer depth analogue used in the feature vector."""
        return self.vgg_blocks * (self.convs_per_block + 1) + len(self.dense_layers)

    @property
    def total_neurons(self) -> int:
        """Dense-head neuron count (the conv part is covered by CNN features)."""
        return int(sum(self.dense_layers)) + self.n_classes


def build_model(
    spec: ModelSpec, rng: "int | np.random.Generator | None" = None
) -> Sequential:
    """Model Building module: instantiate and build a network from a spec."""
    if isinstance(spec, FFNNSpec):
        layers = [Dense(h, spec.activation) for h in spec.hidden_layers]
        layers.append(Dense(spec.n_classes, "linear"))
    elif isinstance(spec, CNNSpec):
        layers = []
        for _ in range(spec.vgg_blocks):
            for _ in range(spec.convs_per_block):
                layers.append(
                    Conv2D(spec.filters, spec.filter_size, spec.activation,
                           padding=spec.padding)
                )
            layers.append(MaxPool2D(spec.pool_size))
        layers.append(Flatten())
        for units in spec.dense_layers:
            layers.append(Dense(units, spec.activation))
        layers.append(Dense(spec.n_classes, "linear"))
    else:
        raise BuildError(f"unknown spec type {type(spec).__name__}")
    return Sequential(layers, name=spec.name).build(spec.input_shape, rng)
