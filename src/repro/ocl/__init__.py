"""OpenCL-style execution layer over the simulated testbed.

This subpackage mirrors the host-API structure the paper's implementation
uses (§IV): platforms expose devices, devices join contexts, command queues
execute kernels and transfers, buffers move (or map) data, and events carry
profiling timestamps.  Two things differ from a real OpenCL runtime:

* **Time is virtual.**  Every enqueue advances the queue's clock by the
  analytical cost model (:mod:`repro.hw.costmodel`) instead of waiting on
  hardware, so a 256K-sample Cifar-10 characterization point costs
  microseconds of host time to *simulate* while reporting the seconds it
  would take to *execute*.
* **Compute is optionally real.**  With ``execute_kernels=True`` (the
  default) kernels run the actual numpy forward pass and produce correct
  classifications; characterization sweeps can disable execution to get
  timing/energy only.  Timing is identical in both modes by construction.

The scheduler (:mod:`repro.sched`) talks only to this layer, which is what
makes it device-agnostic: anything that exposes the same Device interface
(an FPGA model, an NPU model) can be scheduled without code changes.
"""

from repro.ocl.buffer import Buffer, MapFlags, MemFlags
from repro.ocl.context import Context
from repro.ocl.device import Device, DeviceState
from repro.ocl.event import Event, EventStatus
from repro.ocl.kernels import InferenceKernel
from repro.ocl.platform import Platform, get_platforms
from repro.ocl.program import Program
from repro.ocl.queue import CommandQueue
from repro.ocl.workgroup import workgroup_efficiency

__all__ = [
    "Platform",
    "get_platforms",
    "Device",
    "DeviceState",
    "Context",
    "CommandQueue",
    "Buffer",
    "MemFlags",
    "MapFlags",
    "Event",
    "EventStatus",
    "Program",
    "InferenceKernel",
    "workgroup_efficiency",
]
