"""Command queues: where virtual time advances.

A :class:`CommandQueue` serializes commands on one device and keeps the
device's virtual clock.  Each enqueue returns a completed
:class:`~repro.ocl.event.Event` with profiling timestamps and an energy
breakdown — the queue is simultaneously the execution engine and the
power/latency instrumentation of §III-A1.

Inference launches account the paper's full pipeline (§II-A): input
staging (PCIe DMA or zero-copy map), per-layer kernel launches, compute at
the achieved occupancy (stretched by the dGPU clock ramp when cold), and
result transfer back.  With ``execute_kernels=True`` the launch also runs
the real numpy forward pass and deposits class scores in the output
buffer; timing is byte-for-byte identical with execution off, which is how
large characterization sweeps stay cheap.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DeviceError, KernelError
from repro.ocl.buffer import Buffer
from repro.ocl.context import Context
from repro.ocl.device import Device
from repro.ocl.event import Event
from repro.ocl.kernels import InferenceKernel
from repro.ocl.workgroup import workgroup_efficiency

__all__ = ["CommandQueue"]


class CommandQueue:
    """An in-order command queue bound to one device."""

    def __init__(
        self,
        context: Context,
        device: Device,
        execute_kernels: bool = True,
    ):
        if device not in context:
            raise DeviceError(f"device {device.name!r} is not in the context")
        self.context = context
        self.device = device
        self.execute_kernels = execute_kernels
        self._now: float = 0.0
        self.events: list[Event] = []
        self._meters: list = []

    # -- instrumentation -----------------------------------------------------

    def attach_meter(self, meter) -> None:
        """Attach an :class:`~repro.telemetry.meters.EnergyMeter`.

        Every subsequent inference launch deposits its (start, end, mean
        watts) interval, reproducing the paper's live nvidia-smi/PCM
        sampling (§III-A1): ``meter.sample(t)`` then reads the draw at any
        virtual instant and ``meter.energy(a, b)`` integrates a window.
        """
        self._meters.append(meter)

    def _record_power(self, start: float, end: float, energy) -> None:
        if not self._meters or end <= start:
            return
        watts = energy.total_j / (end - start)
        for meter in self._meters:
            meter.record(start, end, watts)

    # -- virtual clock -----------------------------------------------------

    @property
    def current_time(self) -> float:
        """Virtual seconds since queue creation."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Let virtual time pass with the queue idle (device may cool)."""
        if t < self._now:
            raise ValueError(f"cannot advance queue backwards: {t} < {self._now}")
        self._now = t

    def finish(self) -> float:
        """Block until all commands complete; returns the virtual time.

        Commands complete synchronously in this simulator, so this only
        returns the clock — it exists for API parity with real hosts.
        """
        return self._now

    # -- synchronization -----------------------------------------------------

    def _begin(self, wait_for: "list[Event] | None") -> None:
        """Honour an event wait-list: the next command may not start until
        every listed event has completed (cross-queue synchronization).

        Commands in this simulator complete at enqueue time, so waiting
        means advancing this queue's clock past the latest dependency.
        """
        if not wait_for:
            return
        for ev in wait_for:
            ev._require_complete()
        latest = max(ev.time_ended for ev in wait_for)
        if latest > self._now:
            self._now = latest

    def enqueue_marker(self, wait_for: "list[Event] | None" = None) -> Event:
        """A zero-cost event capturing 'everything up to here is done'
        (``clEnqueueMarkerWithWaitList``)."""
        self._begin(wait_for)
        event = Event("marker", time_queued=self._now)
        event.complete(self._now, self._now, self._now)
        self.events.append(event)
        return event

    def enqueue_barrier(self, wait_for: "list[Event] | None" = None) -> Event:
        """Block subsequent commands until the wait-list completes
        (``clEnqueueBarrierWithWaitList``).  In-order queues make this a
        marker with dependency semantics."""
        self._begin(wait_for)
        event = Event("barrier", time_queued=self._now)
        event.complete(self._now, self._now, self._now)
        self.events.append(event)
        return event

    # -- data movement --------------------------------------------------------

    def enqueue_write_buffer(
        self,
        buffer: Buffer,
        src: np.ndarray,
        wait_for: "list[Event] | None" = None,
    ) -> Event:
        """Host-to-device transfer (DMA for the dGPU, map+store otherwise)."""
        self._begin(wait_for)
        event = Event("write_buffer", time_queued=self._now)
        buffer.write_host(src)
        dt = self.device.cost_model.transfer.transfer_time(
            src.nbytes, pinned=buffer.pinned or self.device.spec.shares_host_memory
        )
        end = self._now + dt
        event.complete(self._now, self._now, end)
        self._now = end
        self.events.append(event)
        return event

    def enqueue_read_buffer(
        self, buffer: Buffer, wait_for: "list[Event] | None" = None
    ) -> tuple[np.ndarray, Event]:
        """Device-to-host transfer; returns (host copy, event)."""
        self._begin(wait_for)
        event = Event("read_buffer", time_queued=self._now)
        out = buffer.read_host()
        dt = self.device.cost_model.transfer.transfer_time(
            out.nbytes, pinned=buffer.pinned or self.device.spec.shares_host_memory
        )
        end = self._now + dt
        event.complete(self._now, self._now, end)
        self._now = end
        self.events.append(event)
        return out, event

    # -- kernel launch -----------------------------------------------------

    def enqueue_inference(
        self,
        kernel: InferenceKernel,
        x: np.ndarray,
        out_buffer: Buffer | None = None,
        local_size: int | None = None,
        pinned: bool = True,
        wait_for: "list[Event] | None" = None,
    ) -> Event:
        """Classify a batch: the full staged pipeline as one command.

        Parameters
        ----------
        kernel:
            A built inference kernel.
        x:
            Host batch of shape ``(N, *spec.input_shape)``.
        out_buffer:
            Optional buffer to receive the class scores.
        local_size:
            Work-group size override; ``None`` lets the runtime pick the
            device optimum (paper §IV-B: CPU 4096, GPU 256).
        pinned:
            Whether host staging buffers are page-locked.
        """
        self._begin(wait_for)
        spec = kernel.spec
        if x.shape[1:] != tuple(spec.input_shape):
            raise KernelError(
                f"kernel {kernel.name!r} expects samples of shape "
                f"{tuple(spec.input_shape)}, got {x.shape[1:]}"
            )
        batch = int(x.shape[0])
        if batch == 0:
            raise KernelError("cannot classify an empty batch")

        wg_eff = workgroup_efficiency(self.device.spec, local_size)
        event = Event(f"inference:{kernel.name}", time_queued=self._now)

        timing, energy = self.device.execute(
            spec, batch, now=self._now, workgroup_eff=wg_eff, pinned=pinned
        )

        if self.execute_kernels:
            scores = kernel.run(x)
            if out_buffer is not None:
                out_buffer.write_host(scores)
            event.meta["scores"] = scores

        started = self._now + timing.transfer_in_s + timing.launch_s
        ended = self._now + timing.total_s
        event.complete(self._now, started, ended, energy)
        event.meta["timing"] = timing
        event.meta["batch"] = batch
        event.meta["bytes"] = batch * spec.sample_bytes
        self._record_power(event.time_queued, ended, energy)
        self._now = ended
        self.events.append(event)
        return event

    def enqueue_inference_virtual(
        self,
        kernel: InferenceKernel,
        batch: int,
        local_size: int | None = None,
        pinned: bool = True,
        wait_for: "list[Event] | None" = None,
    ) -> Event:
        """Timing-only launch: account a batch without host sample data.

        Streaming experiments route thousands of requests whose *contents*
        are irrelevant to the scheduling claims; this avoids materializing
        multi-gigabyte batches while producing timing/energy identical to
        :meth:`enqueue_inference`.
        """
        self._begin(wait_for)
        if batch <= 0:
            raise KernelError(f"batch must be positive, got {batch}")
        spec = kernel.spec
        wg_eff = workgroup_efficiency(self.device.spec, local_size)
        event = Event(f"inference:{kernel.name}", time_queued=self._now)
        timing, energy = self.device.execute(
            spec, batch, now=self._now, workgroup_eff=wg_eff, pinned=pinned
        )
        started = self._now + timing.transfer_in_s + timing.launch_s
        ended = self._now + timing.total_s
        event.complete(self._now, started, ended, energy)
        event.meta["timing"] = timing
        event.meta["batch"] = batch
        event.meta["bytes"] = batch * spec.sample_bytes
        self._record_power(event.time_queued, ended, energy)
        self._now = ended
        self.events.append(event)
        return event

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CommandQueue(device={self.device.name!r}, t={self._now:.6f}s, "
            f"events={len(self.events)})"
        )
