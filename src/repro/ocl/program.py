"""Programs: kernel factories per model architecture.

A :class:`Program` plays the role of ``clCreateProgramWithSource`` +
``clBuildProgram``: given model specs it produces ready-to-launch
:class:`~repro.ocl.kernels.InferenceKernel` objects, caching builds.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import KernelError
from repro.nn.builders import ModelSpec
from repro.nn.model import Sequential
from repro.ocl.context import Context
from repro.ocl.kernels import InferenceKernel

__all__ = ["Program"]


class Program:
    """A built program holding one kernel per registered model spec."""

    def __init__(self, context: Context, specs: Iterable[ModelSpec] = ()):
        self.context = context
        self._kernels: dict[str, InferenceKernel] = {}
        for spec in specs:
            self.register(spec)

    def register(self, spec: ModelSpec, model: Sequential | None = None) -> InferenceKernel:
        """Build (or rebuild) the kernel for ``spec``."""
        kernel = InferenceKernel(spec, model)
        self._kernels[spec.name] = kernel
        return kernel

    def get_kernel(self, name: str) -> InferenceKernel:
        """Fetch a built kernel by model name (``clCreateKernel``)."""
        try:
            return self._kernels[name]
        except KeyError:
            known = ", ".join(sorted(self._kernels)) or "<none>"
            raise KernelError(f"kernel {name!r} not built; built: {known}") from None

    def kernel_names(self) -> list[str]:
        """Names of all built kernels, sorted."""
        return sorted(self._kernels)

    def __contains__(self, name: str) -> bool:
        return name in self._kernels
