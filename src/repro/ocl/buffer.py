"""Memory objects: device buffers, host staging, zero-copy maps.

Paper §IV-B's memory-model treatment, reproduced:

* For the discrete GPU, host data is staged through a **page-locked
  (pinned) buffer** and DMA'd over PCIe; pageable staging is supported but
  slower (the cost model charges the pageable penalty).
* For the CPU and iGPU, whose global memory *is* host memory, buffers are
  **mapped in place** (``clEnqueueMapBuffer``) — no bulk copy ever happens,
  and the map returns a numpy *view*, not a copy, which tests assert.
* Mapping a dGPU buffer raises :class:`~repro.errors.MemoryMapError`, as
  the paper's architecture discussion (§II-A) explains there is no shared
  physical memory to map.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.errors import MemoryMapError
from repro.ocl.context import Context

__all__ = ["MemFlags", "MapFlags", "Buffer"]


class MemFlags(enum.Flag):
    """Buffer allocation flags (subset of ``cl_mem_flags``)."""

    READ_WRITE = enum.auto()
    READ_ONLY = enum.auto()
    WRITE_ONLY = enum.auto()
    ALLOC_HOST_PTR = enum.auto()  # pinned / page-locked host allocation


class MapFlags(enum.Flag):
    """Map direction flags (subset of ``cl_map_flags``)."""

    READ = enum.auto()
    WRITE = enum.auto()


class Buffer:
    """A memory object shared by the devices of one context.

    The backing store is always a host numpy array (this is a simulator);
    what differs per device is the *accounted* movement: PCIe DMA time for
    the dGPU, zero-copy map for host-shared devices.
    """

    def __init__(
        self,
        context: Context,
        nbytes: int | None = None,
        hostbuf: np.ndarray | None = None,
        flags: MemFlags = MemFlags.READ_WRITE,
    ):
        if hostbuf is None and nbytes is None:
            raise ValueError("Buffer needs nbytes or hostbuf")
        if hostbuf is not None:
            self._array = np.ascontiguousarray(hostbuf)
        else:
            if nbytes <= 0:
                raise ValueError(f"buffer size must be positive, got {nbytes}")
            self._array = np.zeros(int(nbytes), dtype=np.uint8)
        self.context = context
        self.flags = flags
        self._mapped = False

    @property
    def nbytes(self) -> int:
        """Size of the backing allocation in bytes."""
        return int(self._array.nbytes)

    @property
    def pinned(self) -> bool:
        """Whether the host allocation is page-locked (affects PCIe speed)."""
        return bool(self.flags & MemFlags.ALLOC_HOST_PTR)

    @property
    def is_mapped(self) -> bool:
        """Whether a host mapping is currently outstanding."""
        return self._mapped

    # -- host access ----------------------------------------------------------

    def map(self, device, flags: MapFlags = MapFlags.READ | MapFlags.WRITE) -> np.ndarray:
        """Zero-copy map for host-shared devices; returns a *view*.

        Raises :class:`MemoryMapError` for discrete devices (their global
        memory is physically separate, §II-A).
        """
        if not device.spec.shares_host_memory:
            raise MemoryMapError(
                f"cannot map buffer into host space for discrete device "
                f"{device.name!r}; use enqueue_read/enqueue_write"
            )
        if self._mapped:
            raise MemoryMapError("buffer is already mapped")
        self._mapped = True
        view = self._array.view()
        if not (flags & MapFlags.WRITE):
            view.setflags(write=False)
        return view

    def unmap(self) -> None:
        """Release a mapping created by :meth:`map`."""
        if not self._mapped:
            raise MemoryMapError("buffer is not mapped")
        self._mapped = False

    # -- simulator-internal access ------------------------------------------

    def data(self) -> np.ndarray:
        """Raw backing array (simulator internal; kernels read through this)."""
        return self._array

    def write_host(self, array: np.ndarray) -> None:
        """Copy host data into the buffer (the host side of a DMA write)."""
        src = np.ascontiguousarray(array)
        if src.nbytes != self.nbytes or src.dtype != self._array.dtype:
            self._array = src.copy()
        else:
            self._array[...] = src

    def read_host(self) -> np.ndarray:
        """Copy buffer contents out to host memory."""
        return self._array.copy()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Buffer(nbytes={self.nbytes}, pinned={self.pinned})"
