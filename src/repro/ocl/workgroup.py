"""Work-group sizing rules (paper §IV-B).

"From our experiments we have found out that the best configuration for the
CPU is 4096 work-items per work-group, whilst the best configuration for
the GPU is 256" — GPUs want many small groups their schedulers can juggle
to hide memory latency; CPUs want few big groups to amortize thread-pool
dispatch.

:func:`workgroup_efficiency` converts a configured group size into a
multiplicative throughput derating relative to the device's optimum.  The
penalty grows with the log-distance from optimal and floors out: even a
badly-sized kernel still makes progress, just slowly (roughly matching the
2-3x swings such misconfiguration causes in practice).
"""

from __future__ import annotations

import math

from repro.errors import KernelError
from repro.hw.specs import DeviceSpec

__all__ = ["workgroup_efficiency", "validate_workgroup", "MAX_WORKGROUP"]

#: Largest work-group any of our devices accepts (the CPU runtime's cap).
MAX_WORKGROUP = 8192

#: Throughput lost per doubling away from the optimal group size.
_PENALTY_PER_OCTAVE = 0.12

#: Efficiency never drops below this (kernels still run, §IV-B).
_FLOOR = 0.35


def validate_workgroup(device: DeviceSpec, local_size: int) -> None:
    """Reject work-group sizes a real runtime would refuse."""
    if local_size <= 0:
        raise KernelError(f"work-group size must be positive, got {local_size}")
    if local_size > MAX_WORKGROUP:
        raise KernelError(
            f"work-group size {local_size} exceeds device limit {MAX_WORKGROUP}"
        )
    if local_size & (local_size - 1):
        raise KernelError(
            f"work-group size must be a power of two, got {local_size}"
        )


def workgroup_efficiency(device: DeviceSpec, local_size: int | None = None) -> float:
    """Throughput multiplier in (0, 1] for the chosen work-group size.

    ``None`` means "let the runtime pick" — it picks the optimum.
    """
    if local_size is None:
        return 1.0
    validate_workgroup(device, local_size)
    octaves = abs(math.log2(local_size / device.optimal_workgroup))
    return max(_FLOOR, 1.0 - _PENALTY_PER_OCTAVE * octaves)
