"""Platform discovery, mirroring ``clGetPlatformIDs``.

The paper's system (§IV) uses two OpenCL platforms: the Intel runtime for
the Core CPU + HD Graphics, and the NVIDIA CUDA-toolkit implementation for
the GTX 1080 Ti.  :func:`get_platforms` reproduces that topology over the
simulated devices.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.specs import CPU_I7_8700, DGPU_GTX_1080TI, IGPU_UHD_630, DeviceClass
from repro.ocl.device import Device, DeviceState

__all__ = ["Platform", "get_platforms", "get_all_devices"]


@dataclass
class Platform:
    """An OpenCL platform: a vendor runtime exposing devices."""

    name: str
    vendor: str
    version: str
    devices: list[Device] = field(default_factory=list)

    def get_devices(self, device_class: DeviceClass | None = None) -> list[Device]:
        """Devices on this platform, optionally filtered by class."""
        if device_class is None:
            return list(self.devices)
        return [d for d in self.devices if d.device_class is device_class]


def get_platforms(start_state: DeviceState = DeviceState.IDLE) -> list[Platform]:
    """Enumerate the simulated testbed's two platforms with fresh devices."""
    intel = Platform(
        name="Intel(R) OpenCL",
        vendor="Intel(R) Corporation",
        version="OpenCL 2.1",
        devices=[
            Device(CPU_I7_8700, start_state),
            Device(IGPU_UHD_630, start_state),
        ],
    )
    nvidia = Platform(
        name="NVIDIA CUDA",
        vendor="NVIDIA Corporation",
        version="OpenCL 1.2 CUDA 10.0",
        devices=[Device(DGPU_GTX_1080TI, start_state)],
    )
    return [intel, nvidia]


def get_all_devices(start_state: DeviceState = DeviceState.IDLE) -> list[Device]:
    """All devices across platforms: [CPU, iGPU, dGPU]."""
    devices: list[Device] = []
    for platform in get_platforms(start_state):
        devices.extend(platform.devices)
    return devices
