"""Inference kernels: the two compute kernels of §IV-B.

The paper develops one kernel family per network type (feed-forward and
convolutional), parallelized thread-per-node with a second level of
parallelism across samples.  Here a kernel is a :class:`ModelSpec` bound to
(optionally) trained weights; launching it on a queue runs the real numpy
forward pass — the vectorized batch dimension *is* the sample-level
parallelism — while the cost model accounts what the launch would cost on
the target device.
"""

from __future__ import annotations

import numpy as np

from repro.errors import KernelError
from repro.nn.builders import ModelSpec, build_model
from repro.nn.model import Sequential

__all__ = ["InferenceKernel"]


class InferenceKernel:
    """A compiled classification kernel for one model architecture.

    Parameters
    ----------
    spec:
        The model architecture (drives the cost model).
    model:
        A built :class:`~repro.nn.model.Sequential` with (ideally trained)
        weights.  ``None`` builds one lazily with default-initialized
        weights on first execution.
    """

    def __init__(self, spec: ModelSpec, model: Sequential | None = None):
        if model is not None:
            if not model.built:
                raise KernelError(f"model for kernel {spec.name!r} is not built")
            if model.input_shape != tuple(spec.input_shape):
                raise KernelError(
                    f"kernel {spec.name!r}: model input {model.input_shape} "
                    f"!= spec input {tuple(spec.input_shape)}"
                )
        self.spec = spec
        self._model = model

    @property
    def name(self) -> str:
        """The model architecture's name."""
        return self.spec.name

    @property
    def model(self) -> Sequential:
        """The bound network, building a default-weight one on demand."""
        if self._model is None:
            self._model = build_model(self.spec, rng=0)
        return self._model

    def bind_weights(self, weights: dict[str, np.ndarray]) -> None:
        """Load trained weights (the Weights Building hand-off of Fig. 2)."""
        self.model.set_weights(weights)

    def run(self, x: np.ndarray) -> np.ndarray:
        """Execute the forward pass; returns output-layer scores.

        This is the *functional* half of a launch — the timing half lives
        in the command queue.  The result is bit-identical on every device
        (they all run the same portable kernel, §IV).
        """
        if x.ndim < 2:
            raise KernelError(
                f"kernel {self.name!r} expects a batch (N, ...), got shape {x.shape}"
            )
        return self.model.forward(x)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"InferenceKernel({self.name!r})"
