"""Runtime device objects: a spec plus mutable execution state.

A :class:`Device` owns the cost and power models for one physical device
and tracks its DVFS state over virtual time.  The discrete GPU's state
(idle vs warmed-up) is exactly what the paper's scheduler probes "via a
PCIe call" before placing work (§V-A): :meth:`Device.probe_state` is that
call.
"""

from __future__ import annotations

import enum

from repro.hw.costmodel import CostModel, KernelTiming
from repro.hw.dvfs import ClockState
from repro.hw.power import EnergyBreakdown, PowerModel
from repro.hw.specs import DeviceClass, DeviceSpec
from repro.nn.builders import ModelSpec

__all__ = ["Device", "DeviceState"]

#: Clock fraction above which we report the device as warmed-up.
_WARM_THRESHOLD = 0.7


class DeviceState(enum.Enum):
    """Coarse device state as seen by the scheduler's probe."""

    IDLE = "idle"
    WARM = "warm"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Device:
    """One simulated computational device.

    Parameters
    ----------
    spec:
        Static description (published + calibration constants).
    start_state:
        Initial DVFS state; defaults to idle (a freshly booted system).
    """

    def __init__(self, spec: DeviceSpec, start_state: DeviceState = DeviceState.IDLE):
        self.spec = spec
        self.cost_model = CostModel(spec)
        self.power_model = PowerModel(spec)
        if start_state is DeviceState.WARM:
            self._clock = self.cost_model.warm_state()
        else:
            self._clock = self.cost_model.idle_state()
        self._background_load = 0.0

    # -- identity -----------------------------------------------------------

    @property
    def name(self) -> str:
        """The device's spec name (e.g. 'gtx-1080ti')."""
        return self.spec.name

    @property
    def device_class(self) -> DeviceClass:
        """The device family (CPU / IGPU / DGPU)."""
        return self.spec.device_class

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Device({self.spec.name!r}, clock={self._clock.clock_frac:.2f})"

    # -- DVFS state -----------------------------------------------------------

    @property
    def clock_state(self) -> ClockState:
        """Current DVFS state (clock fraction + timestamp)."""
        return self._clock

    def probe_state(self, now: float) -> DeviceState:
        """The scheduler's PCIe probe: is the device warmed up *right now*?

        Cooling is applied lazily: probing at a later virtual time first
        relaxes the clock toward idle.
        """
        self._cool_to(now)
        if self._clock.clock_frac >= _WARM_THRESHOLD:
            return DeviceState.WARM
        return DeviceState.IDLE

    def force_state(self, state: DeviceState, now: float = 0.0) -> None:
        """Pin the device to idle/warm (used by characterization sweeps)."""
        if state is DeviceState.WARM:
            self._clock = ClockState(clock_frac=1.0, timestamp=now)
        else:
            self._clock = ClockState(
                clock_frac=self.cost_model.clock.idle_frac, timestamp=now
            )

    def _cool_to(self, now: float) -> None:
        if now > self._clock.timestamp:
            self._clock = self.cost_model.clock.cool(self._clock, now)

    # -- contention ("system changes", §V) -----------------------------------

    @property
    def background_load(self) -> float:
        """Fraction of the device consumed by other applications."""
        return self._background_load

    def set_background_load(self, fraction: float) -> None:
        """Model another application occupying part of this device.

        The paper's adaptivity claims include responding to "application
        overloads and system changes": a contended device delivers only
        ``1 - fraction`` of its throughput, which the static predictor
        cannot see — only the online feedback layer
        (:mod:`repro.sched.adaptive`) observes the realized slowdown.
        """
        if not (0.0 <= fraction < 1.0):
            raise ValueError(f"background load must be in [0, 1), got {fraction}")
        self._background_load = float(fraction)

    def _effective_eff(self, workgroup_eff: float) -> float:
        return workgroup_eff * (1.0 - self._background_load)

    # -- execution ------------------------------------------------------------

    def execute(
        self,
        spec: ModelSpec,
        batch: int,
        now: float,
        workgroup_eff: float = 1.0,
        pinned: bool = True,
    ) -> tuple[KernelTiming, EnergyBreakdown]:
        """Account one batched classification starting at virtual ``now``.

        Cools the device over any idle gap since its last activity, runs the
        cost model from the resulting clock state, commits the new (warmer)
        state, and returns the timing and energy.
        """
        self._cool_to(now)
        timing = self.cost_model.timing(
            spec, batch, state=self._clock,
            workgroup_eff=self._effective_eff(workgroup_eff), pinned=pinned,
        )
        self._clock = timing.clock_end
        energy = self.power_model.energy(timing)
        return timing, energy

    def preview(
        self,
        spec: ModelSpec,
        batch: int,
        state: DeviceState | None = None,
        workgroup_eff: float = 1.0,
        pinned: bool = True,
    ) -> tuple[KernelTiming, EnergyBreakdown]:
        """Cost a hypothetical run *without* mutating device state.

        Characterization sweeps use this to measure idle-start and
        warm-start behaviour side by side.  Note: previews deliberately
        IGNORE background load — they represent what the offline
        characterization knew, which is exactly what a contention event
        invalidates.
        """
        if state is DeviceState.WARM:
            clock = self.cost_model.warm_state()
        elif state is DeviceState.IDLE:
            clock = self.cost_model.idle_state()
        else:
            clock = self._clock
        timing = self.cost_model.timing(
            spec, batch, state=clock, workgroup_eff=workgroup_eff, pinned=pinned
        )
        return timing, self.power_model.energy(timing)
