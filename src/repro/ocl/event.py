"""Profiling events, mirroring ``clGetEventProfilingInfo`` semantics.

Every enqueue returns an :class:`Event` carrying four virtual timestamps
(queued / submitted / started / ended, all in queue time) plus — because
this runtime doubles as the power instrumentation (§III-A1) — the energy
breakdown of the command.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.hw.power import EnergyBreakdown

__all__ = ["EventStatus", "Event"]


class EventStatus(enum.Enum):
    """Command lifecycle states (a subset of OpenCL's)."""

    QUEUED = "queued"
    COMPLETE = "complete"


@dataclass
class Event:
    """One completed (or pending) command on a queue."""

    command: str
    time_queued: float
    time_submitted: float = 0.0
    time_started: float = 0.0
    time_ended: float = 0.0
    status: EventStatus = EventStatus.QUEUED
    energy: EnergyBreakdown | None = None
    meta: dict = field(default_factory=dict)

    def complete(
        self,
        submitted: float,
        started: float,
        ended: float,
        energy: EnergyBreakdown | None = None,
    ) -> "Event":
        """Mark the command finished with its profiling timestamps."""
        if not (self.time_queued <= submitted <= started <= ended):
            raise ValueError(
                f"non-monotonic event timestamps: queued={self.time_queued}, "
                f"submitted={submitted}, started={started}, ended={ended}"
            )
        self.time_submitted = submitted
        self.time_started = started
        self.time_ended = ended
        self.energy = energy
        self.status = EventStatus.COMPLETE
        return self

    @property
    def duration_s(self) -> float:
        """Start-to-end execution time (the profiling delta OpenCL reports)."""
        self._require_complete()
        return self.time_ended - self.time_started

    @property
    def latency_s(self) -> float:
        """Queue-to-end time: what a caller waiting on the event observes."""
        self._require_complete()
        return self.time_ended - self.time_queued

    def _require_complete(self) -> None:
        if self.status is not EventStatus.COMPLETE:
            raise RuntimeError(f"event {self.command!r} has not completed")
