"""Contexts: the resource scope shared by queues and buffers."""

from __future__ import annotations

from typing import Iterable

from repro.errors import DeviceError
from repro.ocl.device import Device

__all__ = ["Context"]


class Context:
    """A set of devices that can share buffers (``clCreateContext``)."""

    def __init__(self, devices: Iterable[Device]):
        self.devices: list[Device] = list(devices)
        if not self.devices:
            raise DeviceError("a context needs at least one device")
        names = [d.name for d in self.devices]
        if len(set(names)) != len(names):
            raise DeviceError(f"duplicate devices in context: {names}")

    def get_device(self, name: str) -> Device:
        """Find a context device by spec name or device-class value."""
        for d in self.devices:
            if d.name == name or d.device_class.value == name:
                return d
        known = ", ".join(d.name for d in self.devices)
        raise DeviceError(f"device {name!r} not in context (has: {known})")

    def add_device(self, device: Device) -> None:
        """Admit a new device (e.g. a freshly created partition)."""
        if any(d.name == device.name for d in self.devices):
            raise DeviceError(f"device {device.name!r} already in context")
        self.devices.append(device)

    def remove_device(self, name: str) -> Device:
        """Retire a device by exact spec name (never by class value).

        The last device cannot be removed — a context without devices is
        invalid, and partition managers attach replacements first.
        """
        for i, d in enumerate(self.devices):
            if d.name == name:
                if len(self.devices) == 1:
                    raise DeviceError(
                        f"cannot remove {name!r}: it is the context's last device"
                    )
                return self.devices.pop(i)
        known = ", ".join(d.name for d in self.devices)
        raise DeviceError(f"device {name!r} not in context (has: {known})")

    def __contains__(self, device: Device) -> bool:
        return device in self.devices

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Context({[d.name for d in self.devices]})"
