"""SLO-aware serving frontend over the paper's placement scheduler.

The paper contributes a *per-request placement oracle* (Fig. 5: probe the
dGPU, predict the best device, dispatch); this package wraps it in the
serving machinery a production frontend needs, layered on the
discrete-event engine:

* :mod:`repro.serving.queues` — per-model FIFO / earliest-deadline-first
  request queues with absolute deadlines.
* :mod:`repro.serving.coalescer` — dynamic batch coalescing (dispatch on
  max-batch or max-wait, whichever first), exploiting the Fig. 3 result
  that every device's throughput grows with batch size.
* :mod:`repro.serving.admission` — bounded queues, estimated-completion
  rejection from learned service times, and a degrade-to-cheapest path.
* :mod:`repro.serving.workers` — per-device execution stages that launch
  coalesced batches and feed realized service times back.
* :mod:`repro.serving.frontend` — the :class:`ServingFrontend` façade
  (``submit(model, x, deadline_s, policy)`` → future-like
  :class:`ServingResponse`) plus per-model :class:`SLOConfig`.

Placement stays paper-faithful (the trained predictor ranks devices, the
backlog layer spills under load); queues, deadlines and admission are the
extension that makes the scheduler a server.
"""

from repro.serving.admission import AdmissionController, AdmissionDecision
from repro.serving.coalescer import BatchCoalescer, CoalescedBatch
from repro.serving.frontend import (
    NodeStats,
    ServingFrontend,
    ServingResponse,
    ServingResult,
    SLOConfig,
)
from repro.serving.queues import (
    EDFQueue,
    FIFOQueue,
    QueueEntry,
    RequestQueue,
    make_queue,
)
from repro.serving.workers import DeviceWorker

__all__ = [
    "QueueEntry",
    "RequestQueue",
    "FIFOQueue",
    "EDFQueue",
    "make_queue",
    "BatchCoalescer",
    "CoalescedBatch",
    "AdmissionController",
    "AdmissionDecision",
    "DeviceWorker",
    "SLOConfig",
    "NodeStats",
    "ServingFrontend",
    "ServingResponse",
    "ServingResult",
]
