"""Dynamic batch coalescing: merge queued requests into bigger launches.

The §IV-C characterization (Fig. 3) shows every device's throughput rising
with batch size across the serving range, so a frontend should amortize
launches by merging queued requests — but not wait forever for a batch to
fill.  :class:`BatchCoalescer` implements the classic two-trigger rule:

* **full** — pending samples reach ``max_batch``: dispatch immediately;
* **timeout** — the oldest queued request has waited ``max_wait_s``:
  dispatch whatever is there.

Whichever fires first wins.  The coalescer is clock-agnostic: the caller
(the frontend, driven by the event loop) asks :meth:`ready` /
:meth:`next_flush_at` and calls :meth:`take` — which makes the merge logic
trivially testable under property-based random traces.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serving.queues import QueueEntry, RequestQueue

__all__ = ["CoalescedBatch", "BatchCoalescer"]

#: Tolerance for timer-vs-trigger float comparisons (an event scheduled at
#: exactly oldest+max_wait must count as having waited max_wait).
_EPS = 1e-9


@dataclass(frozen=True, slots=True)
class CoalescedBatch:
    """One merged launch: a group of requests served as a single batch."""

    model: str
    entries: tuple[QueueEntry, ...]
    formed_s: float
    trigger: str               # 'full' | 'timeout' | 'flush'

    def __post_init__(self) -> None:
        if not self.entries:
            raise ValueError("a coalesced batch needs at least one request")
        if any(e.request.model != self.model for e in self.entries):
            raise ValueError("coalesced batch mixes models")

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def total_samples(self) -> int:
        """Samples across all merged requests — the launch batch size."""
        return sum(e.batch for e in self.entries)

    @property
    def earliest_deadline_s(self) -> "float | None":
        """Tightest absolute deadline in the batch (None if none set)."""
        deadlines = [e.deadline_s for e in self.entries if e.deadline_s is not None]
        return min(deadlines) if deadlines else None

    @property
    def oldest_enqueued_s(self) -> float:
        return min(e.enqueued_s for e in self.entries)


class BatchCoalescer:
    """Two-trigger batch former over one model's request queue."""

    def __init__(self, queue: RequestQueue, max_batch: int, max_wait_s: float):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_s < 0.0:
            raise ValueError(f"max_wait_s must be >= 0, got {max_wait_s}")
        self.queue = queue
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s

    @property
    def model(self) -> str:
        return self.queue.model

    @property
    def pending_samples(self) -> int:
        return self.queue.total_samples

    def ready(self, now: float) -> "str | None":
        """The trigger that has fired ('full' | 'timeout'), or None.

        'full' dominates: when both conditions hold the batch is dispatched
        as a full batch (the timeout is moot once max_batch is reached).
        """
        if not len(self.queue):
            return None
        if self.pending_samples >= self.max_batch:
            return "full"
        oldest = self.queue.oldest_enqueued_s()
        if now - oldest >= self.max_wait_s - _EPS:
            return "timeout"
        return None

    def next_flush_at(self) -> "float | None":
        """Virtual time when the timeout trigger will fire (None if empty)."""
        oldest = self.queue.oldest_enqueued_s()
        if oldest is None:
            return None
        return oldest + self.max_wait_s

    def take(self, now: float, trigger: str) -> CoalescedBatch:
        """Pop entries (queue discipline order) into one merged batch.

        Greedy up to ``max_batch`` samples; always takes at least one entry,
        so a single oversized request forms its own batch rather than
        starving.  Entries that would overflow stay queued (their original
        enqueue times keep anchoring the next timeout).
        """
        if not len(self.queue):
            raise ValueError(f"nothing queued for {self.model!r}")
        entries: list[QueueEntry] = []
        samples = 0
        while len(self.queue):
            nxt = self.queue.peek()
            if entries and samples + nxt.batch > self.max_batch:
                break
            entries.append(self.queue.pop())
            samples += entries[-1].batch
            if samples >= self.max_batch:
                break
        return CoalescedBatch(
            model=self.model,
            entries=tuple(entries),
            formed_s=now,
            trigger=trigger,
        )
