"""The SLO-aware serving frontend: queues → coalescer → placement → workers.

This is the serving loop the rest of :mod:`repro.serving` plugs into,
mirroring :class:`~repro.sched.service.InferenceService`'s façade shape
(``submit(model, x, deadline_s, policy)``) but running over the
discrete-event engine so thousands of queued, coalesced, deadline-carrying
requests replay deterministically:

1. ``submit`` schedules an arrival on the :class:`~repro.sim.engine.EventLoop`;
2. at arrival, the :class:`~repro.serving.admission.AdmissionController`
   accepts / sheds / degrades against the per-model SLO config, using the
   backlog scheduler's learned completion estimates;
3. accepted requests sit in a per-model FIFO/EDF queue until the
   :class:`~repro.serving.coalescer.BatchCoalescer` fires (full batch, or
   the oldest request has waited ``max_wait_s``);
4. the coalesced batch is placed by the paper's scheduler
   (:class:`~repro.sched.backlog.BacklogAwareScheduler`, which wraps the
   Fig. 5 predictor) and executed by that device's
   :class:`~repro.serving.workers.DeviceWorker`;
5. completion resolves every merged request's future-like
   :class:`ServingResponse` and feeds the realized service time back into
   the scheduler's outcome table.

Everything observable flows through
:class:`~repro.telemetry.serving.ServingTelemetry`: latency percentiles,
queue depth over time, the coalesced batch-size histogram, and
shed/violation counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial

import numpy as np

from repro.errors import SchedulerError
from repro.nn.builders import ModelSpec
from repro.ocl.event import Event
from repro.sched.backlog import BacklogAwareScheduler, BacklogDecision
from repro.sched.policies import Policy
from repro.sched.scheduler import OnlineScheduler
from repro.serving.admission import AdmissionController
from repro.serving.coalescer import BatchCoalescer, CoalescedBatch
from repro.serving.queues import QueueEntry, make_queue
from repro.serving.workers import DeviceWorker
from repro.sim.engine import EventLoop, TraceCursor
from repro.telemetry.serving import ServingTelemetry
from repro.workloads.requests import InferenceRequest, RequestTrace

__all__ = [
    "SLOConfig",
    "NodeStats",
    "ServingResponse",
    "ServingResult",
    "ServingFrontend",
]

#: Completions landing within this of the deadline still meet it (float slop).
_DEADLINE_EPS = 1e-9


@dataclass(frozen=True)
class SLOConfig:
    """Per-model service-level objective and queueing/batching knobs.

    Parameters
    ----------
    deadline_s:
        Default relative deadline stamped on requests that arrive without
        one (None = best effort, never ECT-rejected).
    max_queue_depth:
        Queue bound enforced by admission (None = unbounded).
    max_batch:
        Coalescing target in *samples*; a full batch dispatches at once.
    max_wait_s:
        Longest a queued request may wait for co-riders before the batch
        dispatches anyway.
    discipline:
        Queue pop order: 'fifo' or 'edf' (earliest deadline first).
    degrade:
        Shed to the cheapest (lowest-power) device instead of dropping.
    ect_margin:
        Safety factor on completion estimates in the admission check.
    """

    deadline_s: "float | None" = None
    max_queue_depth: "int | None" = 64
    max_batch: int = 8192
    max_wait_s: float = 0.05
    discipline: str = "fifo"
    degrade: bool = False
    ect_margin: float = 1.0

    def __post_init__(self) -> None:
        if self.deadline_s is not None and self.deadline_s <= 0.0:
            raise ValueError(f"deadline_s must be positive, got {self.deadline_s}")
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_s < 0.0:
            raise ValueError(f"max_wait_s must be >= 0, got {self.max_wait_s}")
        if self.discipline not in ("fifo", "edf"):
            raise ValueError(f"unknown discipline {self.discipline!r}")
        if self.ect_margin <= 0.0:
            raise ValueError(f"ect_margin must be positive, got {self.ect_margin}")


@dataclass(frozen=True, slots=True)
class NodeStats:
    """A cheap load snapshot of one frontend, for cluster-level polling.

    Every field is O(#models) to produce — counters, queue lengths and a
    bounded rolling-window tail, never a full-history percentile — so a
    router may take one per node per routing decision.

    * ``queued`` / ``queued_samples`` — requests (samples) sitting in the
      per-model serving queues, not yet dispatched.
    * ``in_flight`` / ``in_flight_samples`` — dispatched to a device worker
      but not yet completed (the device command-queue backlog).
    * ``outstanding`` / ``outstanding_samples`` — the sum of both: work this
      node has accepted and not yet resolved.
    * ``recent_p99_s`` — p99 over the telemetry's rolling latency window
      (None before any request completes).
    * ``backlog_s`` — the largest per-device backlog (seconds of committed
      work ahead of virtual now).
    """

    queued: int
    queued_samples: int
    in_flight: int
    in_flight_samples: int
    served: int
    shed: int
    recent_p99_s: "float | None"
    backlog_s: float
    virtual_time_s: float
    queue_depths: "dict[str, int]"

    @property
    def outstanding(self) -> int:
        return self.queued + self.in_flight

    @property
    def outstanding_samples(self) -> int:
        return self.queued_samples + self.in_flight_samples


class ServingResponse:
    """Future-like handle for one submitted request.

    Starts 'pending'; resolves to 'ok' when its batch completes or 'shed'
    when admission refuses it.  Degraded requests resolve 'ok' with
    :attr:`degraded` set.

    ``on_done`` is an optional resolution hook: set it before the loop
    runs past the request and it fires exactly once, with this response,
    at the instant the status leaves 'pending' (served or shed).  Cascade
    executors chain stages through it; it is never called for responses
    a drain orphaned (those stay pending forever — the adopting node's
    fresh response resolves instead).
    """

    __slots__ = (
        "request", "status", "device", "device_name", "trigger", "batch_id",
        "batch_size", "dispatched_s", "start_s", "end_s", "energy_j",
        "scores", "degraded", "shed_reason", "on_done",
    )

    def __init__(self, request: InferenceRequest):
        self.request = request
        self.status = "pending"
        self.device: "str | None" = None          # device-class value
        self.device_name: "str | None" = None
        self.trigger: "str | None" = None         # what dispatched its batch
        self.batch_id: "int | None" = None        # which coalesced batch served it
        self.batch_size: "int | None" = None      # coalesced launch size
        self.dispatched_s: "float | None" = None  # when its batch was formed
        self.start_s: "float | None" = None
        self.end_s: "float | None" = None
        self.energy_j: "float | None" = None      # batch energy x sample share
        self.scores: "np.ndarray | None" = None
        self.degraded = False
        self.shed_reason: "str | None" = None
        self.on_done: "Callable[[ServingResponse], None] | None" = None

    def _fire_done(self) -> None:
        """Invoke the resolution hook once (it is consumed on firing)."""
        hook = self.on_done
        if hook is not None:
            self.on_done = None
            hook(self)

    @property
    def done(self) -> bool:
        return self.status != "pending"

    @property
    def served(self) -> bool:
        return self.status == "ok"

    def outcome_tuple(self) -> tuple:
        """The resolved outcome serialized for digesting and IPC.

        ``(request_id, status, device, end_s, shed_reason)`` — the
        node-local analogue of
        :meth:`~repro.cluster.router.ClusterResponse.outcome_tuple`; the
        cluster version prepends the node name.
        """
        return (
            self.request.request_id,
            self.status,
            self.device,
            self.end_s,
            self.shed_reason,
        )

    @property
    def latency_s(self) -> float:
        """Arrival-to-completion time (served requests only).

        Counts from the request's *effective* arrival — the chain's first
        arrival for escalated follow-up requests — so end-to-end latency
        honestly includes the time earlier stages already spent.
        """
        if not self.served:
            raise SchedulerError(f"request is {self.status}, has no latency")
        return self.end_s - self.request.effective_arrival_s

    @property
    def deadline_met(self) -> "bool | None":
        """Whether the SLO held (None if best-effort or not served)."""
        if not self.served or self.request.deadline_s is None:
            return None
        return self.end_s <= self.request.deadline_s + _DEADLINE_EPS

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ServingResponse(id={self.request.request_id}, status={self.status!r}, "
            f"device={self.device!r})"
        )


@dataclass
class ServingResult:
    """Aggregate outcome of serving a trace through the frontend."""

    responses: list[ServingResponse] = field(default_factory=list)
    telemetry: ServingTelemetry = field(default_factory=ServingTelemetry)

    def __len__(self) -> int:
        return len(self.responses)

    @property
    def served(self) -> list[ServingResponse]:
        return [r for r in self.responses if r.served]

    @property
    def shed(self) -> list[ServingResponse]:
        return [r for r in self.responses if r.status == "shed"]

    @property
    def shed_rate(self) -> float:
        return len(self.shed) / len(self.responses) if self.responses else 0.0

    @property
    def n_violations(self) -> int:
        """Served requests that finished after their deadline."""
        return sum(1 for r in self.served if r.deadline_met is False)

    def latency_percentile(self, q: float) -> float:
        """q-th percentile latency over served requests, in seconds."""
        if not self.served:
            raise SchedulerError("no served requests in result")
        return float(np.percentile([r.latency_s for r in self.served], q))

    @property
    def total_energy_j(self) -> float:
        return float(sum(r.energy_j for r in self.served))

    def device_shares(self) -> dict[str, float]:
        """Fraction of served requests per device class."""
        served = self.served
        if not served:
            return {}
        counts: dict[str, int] = {}
        for r in served:
            counts[r.device] = counts.get(r.device, 0) + 1
        return {d: c / len(served) for d, c in sorted(counts.items())}


class ServingFrontend:
    """SLO-aware serving over the paper's per-request placement oracle.

    Parameters
    ----------
    scheduler:
        A warmed-up :class:`OnlineScheduler` (its predictor is the
        placement prior; its command queues are the devices).
    specs:
        Deployed model specs by name (must match the dispatcher).
    slo:
        Per-model :class:`SLOConfig` overrides; ``default_slo`` fills gaps.
    policy:
        Policy whose predictor ranks placement candidates.
    max_rank:
        Devices eligible for backlog spilling (see BacklogAwareScheduler).
    loop:
        Bring-your-own event loop (e.g. to co-simulate other actors).
    decision_cache:
        Serve placement decisions through the backlog scheduler's decision
        cache (bit-identical results; disable for the uncached reference
        path in equivalence tests).
    tenants:
        Optional :class:`~repro.partition.tenants.TenantSet` attributing
        requests to tenants by model ownership.  With one installed the
        telemetry keeps a per-tenant isolation ledger (served / shed /
        violations / tails); without one, nothing tenant-shaped is
        recorded and snapshots stay byte-identical.
    """

    def __init__(
        self,
        scheduler: OnlineScheduler,
        specs: "dict[str, ModelSpec]",
        slo: "dict[str, SLOConfig] | None" = None,
        default_slo: "SLOConfig | None" = None,
        policy: "Policy | str" = Policy.THROUGHPUT,
        max_rank: int = 2,
        loop: "EventLoop | None" = None,
        decision_cache: bool = True,
        tenants: "TenantSet | None" = None,
    ):
        if not specs:
            raise SchedulerError("serving frontend needs at least one model spec")
        self.specs = dict(specs)
        self.loop = loop if loop is not None else EventLoop()
        self.backlog = BacklogAwareScheduler(
            scheduler, policy=policy, max_rank=max_rank, cache_decisions=decision_cache
        )
        self.telemetry = ServingTelemetry()
        # Online-predictor telemetry: the callable answers None with a
        # plain predictor, so frozen-predictor snapshots are unchanged.
        self.telemetry.online = self.backlog.online_stats

        self.tenants = tenants
        if tenants is not None:
            unknown = set(tenants.model_names) - set(self.specs)
            if unknown:
                raise SchedulerError(
                    f"tenant models not deployed: {sorted(unknown)}"
                )
            for tenant in tenants:
                self.telemetry.tenant(tenant.name)  # ledger exists from t=0

        self._slo = dict(slo or {})
        unknown = set(self._slo) - set(self.specs)
        if unknown:
            raise SchedulerError(f"SLO configs for undeployed models: {sorted(unknown)}")
        self._default_slo = default_slo if default_slo is not None else SLOConfig()

        self._queues = {}
        self._coalescers = {}
        self._admission = {}
        for name in self.specs:
            cfg = self.slo_for(name)
            queue = make_queue(cfg.discipline, name, cfg.max_queue_depth)
            self._queues[name] = queue
            self._coalescers[name] = BatchCoalescer(queue, cfg.max_batch, cfg.max_wait_s)
            self._admission[name] = AdmissionController(
                degrade=cfg.degrade, ect_margin=cfg.ect_margin
            )

        context = scheduler.context
        self._workers = {d.name: self._make_worker(d) for d in context.devices}
        # Degrade target: the lowest-power device (cheapest to burn).
        self._cheapest = min(context.devices, key=lambda d: d.spec.busy_watts)

        self._seq = 0
        self._n_batches = 0
        self._pending: dict[int, ServingResponse] = {}
        self._timer_at: dict[str, "float | None"] = {name: None for name in self.specs}
        self._in_flight = 0          # requests dispatched, not yet completed
        self._in_flight_samples = 0
        # Completion-estimate memo for a batched run of simultaneous
        # arrivals.  Non-None only while a vectorized run callback is
        # delivering same-timestamp entries: between dispatches nothing
        # that estimate_completion reads can change at a fixed instant,
        # so one (model, batch) probe serves the whole run.  Every
        # dispatch path clears it (the dispatch moves command queues),
        # which is what keeps admission decisions bit-identical to the
        # per-event path.
        self._est_memo: "dict[tuple[str, int], float] | None" = None

        # -- resilience state (inert unless faults are injected) -----------
        # crashed: fail-stop flag; while set, arrivals fall into the lost
        # limbo instead of the queues (the process is gone — nobody answers)
        # until a health check collects them for re-adoption elsewhere.
        self.crashed = False
        self._lost: "dict[int, QueueEntry]" = {}
        self._dropped: "set[str]" = set()   # device classes out of service
        # Transient-error model (repro.faults.profile.ErrorProfile); draws
        # happen only inside its active windows, so a None/idle profile
        # leaves results digit-identical.
        self.fault_profile = None
        # Cluster hook: called with (entry, response, reason) when a
        # request's launch fails; return True to take ownership (retry /
        # shed at the router), False to let this frontend shed it locally.
        self.on_request_failed = None

    def _make_worker(self, device) -> DeviceWorker:
        scheduler = self.backlog.scheduler
        return DeviceWorker(
            loop=self.loop,
            device_name=device.name,
            device_class=device.device_class.value,
            command_queue=scheduler.queue_for(device.name),
            dispatcher=scheduler.dispatcher,
            on_complete=self._on_complete,
        )

    # -- configuration -----------------------------------------------------

    def slo_for(self, model: str) -> SLOConfig:
        """The effective SLO config for a model (override or default)."""
        return self._slo.get(model, self._default_slo)

    # -- submission --------------------------------------------------------

    def submit(
        self,
        model: str,
        x: "np.ndarray | int",
        deadline_s: "float | None" = None,
        policy: "Policy | str | None" = None,
        arrival_s: "float | None" = None,
    ) -> ServingResponse:
        """Submit one request; returns immediately with a pending response.

        ``x`` is either a host batch (real scores come back) or a bare
        batch size (timing/energy only).  ``deadline_s`` is the *relative*
        SLO from arrival; omitted, the model's configured default applies.
        The work itself happens when the event loop runs past the arrival.
        """
        spec = self._require_spec(model)
        if isinstance(x, np.ndarray):
            batch, data = int(x.shape[0]), x
        else:
            batch, data = int(x), None
        arrival = self.loop.now if arrival_s is None else float(arrival_s)
        cfg = self.slo_for(model)
        relative = deadline_s if deadline_s is not None else cfg.deadline_s
        request = InferenceRequest(
            request_id=self._seq,
            arrival_s=arrival,
            model=spec.name,
            batch=batch,
            policy=str(policy) if policy is not None else Policy.THROUGHPUT.value,
            deadline_s=None if relative is None else arrival + relative,
        )
        return self._schedule_arrival(request, data)

    def submit_request(
        self, request: InferenceRequest, x: "np.ndarray | None" = None
    ) -> ServingResponse:
        """Submit a pre-built trace request (its own deadline wins).

        Requests without a deadline inherit the model's configured default
        SLO, so plain traces can still drive deadline-aware serving.
        """
        self._require_spec(request.model)
        return self._schedule_arrival(self._with_default_deadline(request), x)

    def register_request(
        self, request: InferenceRequest, x: "np.ndarray | None" = None
    ) -> "tuple[ServingResponse, QueueEntry]":
        """Register a request without scheduling its arrival event.

        The cluster router's vectorized path batches deliveries itself
        (one event per run of simultaneous arrivals); it registers here
        during routing and later feeds each entry to the arrival handler
        directly.  Ledger state after registration is identical to
        :meth:`submit_request` minus the per-request heap entry.
        """
        self._require_spec(request.model)
        return self._register_arrival(self._with_default_deadline(request), x)

    def deliver(self, entry: QueueEntry) -> None:
        """Process a registered entry's arrival at the current instant.

        Counterpart to :meth:`register_request` for batched delivery:
        identical to the event the per-request path would have fired.
        """
        self._on_arrival(entry)

    def begin_arrival_batch(self) -> bool:
        """Arm the completion-estimate memo for a batched delivery run.

        Returns True when this call armed it (the caller must then call
        :meth:`end_arrival_batch`), False when a run is already active.
        """
        if self._est_memo is None:
            self._est_memo = {}
            return True
        return False

    def end_arrival_batch(self) -> None:
        """Disarm the completion-estimate memo after a batched run."""
        self._est_memo = None

    def serve_trace(
        self, trace: RequestTrace, vectorized: bool = False
    ) -> ServingResult:
        """Replay a whole trace through the frontend and drain the loop.

        Arrivals are registered first.  The default path injects them
        through the event loop's bulk fast path — one heapify over the
        (typically pre-sorted) trace instead of one ``heappush`` per
        request.  With ``vectorized=True`` the trace never enters the
        heap at all: a :class:`~repro.sim.engine.TraceCursor` fires one
        event per run of equal timestamps and the run is admitted
        synchronously with a shared completion-estimate memo — the heap
        holds only live timers/completions (log of *active* events, not
        of the trace) and simultaneous arrivals cost one backlog probe
        per (model, batch) cell.  Results are bit-identical either way;
        equivalence tests hold both paths to that.
        """
        responses = []
        entries = []
        for request in trace:
            self._require_spec(request.model)
            response, entry = self._register_arrival(
                self._with_default_deadline(request), None
            )
            responses.append(response)
            entries.append(entry)
        if vectorized:
            TraceCursor(
                self.loop,
                [entry.request.arrival_s for entry in entries],
                partial(self._arrive_run, entries),
                label="arrive",
            ).start()
        else:
            self.loop.schedule_bulk(
                [
                    (entry.request.arrival_s, partial(self._on_arrival, entry))
                    for entry in entries
                ],
                label="arrive",
            )
        self.run()
        return ServingResult(responses=responses, telemetry=self.telemetry)

    def _arrive_run(self, entries: "list[QueueEntry]", i: int, j: int) -> None:
        """Deliver one run of same-timestamp arrivals synchronously."""
        outer = self._est_memo
        self._est_memo = {}
        try:
            for k in range(i, j):
                self._on_arrival(entries[k])
        finally:
            self._est_memo = outer

    def _with_default_deadline(self, request: InferenceRequest) -> InferenceRequest:
        """Stamp the model's configured default SLO on deadline-less requests."""
        cfg = self.slo_for(request.model)
        if request.deadline_s is not None or cfg.deadline_s is None:
            return request
        return InferenceRequest(
            request_id=request.request_id,
            arrival_s=request.arrival_s,
            model=request.model,
            batch=request.batch,
            policy=request.policy,
            deadline_s=request.arrival_s + cfg.deadline_s,
        )

    def run(self, until: "float | None" = None) -> float:
        """Drive the event loop (arrivals, flush timers, completions)."""
        return self.loop.run(until=until)

    # -- internals ---------------------------------------------------------

    def _require_spec(self, model: str) -> ModelSpec:
        try:
            return self.specs[model]
        except KeyError:
            known = ", ".join(sorted(self.specs)) or "<none>"
            raise SchedulerError(
                f"model {model!r} is not served; deployed: {known}"
            ) from None

    def _register_arrival(
        self, request: InferenceRequest, data: "np.ndarray | None"
    ) -> "tuple[ServingResponse, QueueEntry]":
        # Guard every submission path (submit, submit_request, serve_trace)
        # before any state mutates, so a stale trace fails cleanly instead
        # of dying half-submitted inside the event loop.
        if request.arrival_s < self.loop.now:
            raise SchedulerError(
                f"cannot submit into the past: arrival {request.arrival_s} "
                f"< now={self.loop.now}"
            )
        response = ServingResponse(request)
        entry = QueueEntry(
            request=request, enqueued_s=request.arrival_s, seq=self._seq, x=data
        )
        self._seq += 1
        self._pending[entry.seq] = response
        return response, entry

    def _schedule_arrival(
        self, request: InferenceRequest, data: "np.ndarray | None"
    ) -> ServingResponse:
        response, entry = self._register_arrival(request, data)
        self.loop.schedule(
            request.arrival_s, partial(self._on_arrival, entry), label="arrive"
        )
        return response

    def _on_arrival(self, entry: QueueEntry, _loop=None) -> None:
        if self.crashed:
            # The process is gone: nothing answers, nothing is refused.
            # The entry waits in limbo until a health check collects it
            # (or a timeout rescues it) — exactly one of the two, since
            # both remove it physically.
            self._lost[entry.seq] = entry
            return
        now = self.loop.now
        model = entry.request.model
        spec = self.specs[model]
        queue = self._queues[model]
        response = self._pending[entry.seq]

        memo = self._est_memo
        if memo is None:
            _, est_delay = self.backlog.estimate_completion(spec, entry.batch, now)
        else:
            key = (model, entry.batch)
            est_delay = memo.get(key)
            if est_delay is None:
                _, est_delay = self.backlog.estimate_completion(spec, entry.batch, now)
                memo[key] = est_delay
        decision = self._admission[model].admit(
            entry.request, queue, now, est_delay_s=est_delay
        )

        if decision.action == "shed":
            del self._pending[entry.seq]
            response.status = "shed"
            response.shed_reason = decision.reason
            self.telemetry.n_shed += 1
            self._record_tenant_shed(model)
            response._fire_done()
            return
        if decision.action == "degrade":
            self.telemetry.n_degraded += 1
            self._run_degraded(entry)
            return

        queue.push(entry)
        self.telemetry.record_depth(model, now, len(queue))
        coalescer = self._coalescers[model]
        if coalescer.ready(now) == "full":
            self._flush(model, "full")
        else:
            self._arm_timer(model)

    # -- coalescing timers -------------------------------------------------

    def _arm_timer(self, model: str) -> None:
        """Schedule the max-wait flush for the oldest queued entry.

        Entries only leave the queue at flushes, so an armed timer is never
        *later* than needed; stale (too-early) firings re-arm themselves.
        """
        flush_at = self._coalescers[model].next_flush_at()
        if flush_at is None:
            return
        pending = self._timer_at.get(model)
        if pending is not None and pending <= flush_at:
            return
        self._timer_at[model] = flush_at
        self.loop.schedule(
            max(flush_at, self.loop.now),
            partial(self._on_timer, model, flush_at),
            label="flush",
        )

    def _on_timer(self, model: str, armed_at: float, _loop=None) -> None:
        if self.crashed:
            return  # timers armed before the crash are dead letters
        if self._timer_at.get(model) != armed_at:
            return  # superseded by a flush that consumed the batch
        self._timer_at[model] = None
        trigger = self._coalescers[model].ready(self.loop.now)
        if trigger is not None:
            self._flush(model, trigger)
        else:
            self._arm_timer(model)

    def _flush(self, model: str, trigger: str) -> None:
        now = self.loop.now
        if self._est_memo:
            # Dispatching moves command queues, so estimates memoized for
            # the current arrival run are stale from here on.
            self._est_memo.clear()
        coalescer = self._coalescers[model]
        queue = self._queues[model]
        spec = self.specs[model]
        while True:
            batch = coalescer.take(now, trigger)
            placement = self.backlog.decide(spec, batch.total_samples, arrival_s=now)
            self._workers[placement.device_name].execute(batch, placement)
            self._in_flight += len(batch)
            self._in_flight_samples += batch.total_samples
            self.telemetry.batch_sizes.add(batch.total_samples)
            # Leftovers can themselves already fill a batch (e.g. a flood
            # arriving between timer firings); drain every full batch now.
            if coalescer.ready(now) != "full":
                break
            trigger = "full"
        self.telemetry.record_depth(model, now, len(queue))
        self._timer_at[model] = None
        self._arm_timer(model)

    # -- degrade path ------------------------------------------------------

    def _run_degraded(self, entry: QueueEntry) -> None:
        """Execute immediately on the cheapest device (no queue, no merge)."""
        now = self.loop.now
        if self._est_memo:
            self._est_memo.clear()
        device = self._cheapest
        degraded = QueueEntry(
            request=entry.request,
            enqueued_s=entry.enqueued_s,
            seq=entry.seq,
            x=entry.x,
            degraded=True,
        )
        batch = CoalescedBatch(
            model=entry.request.model,
            entries=(degraded,),
            formed_s=now,
            trigger="degrade",
        )
        placement = BacklogDecision(
            device=device.device_class.value,
            device_name=device.name,
            gpu_state=self.backlog.scheduler.probe_gpu_state(now=now),
            wait_s=self._workers[device.name].backlog_s(now),
            ranked=(device.device_class.value,),
            spilled=False,
        )
        self._workers[device.name].execute(batch, placement)
        self._in_flight += 1
        self._in_flight_samples += entry.batch

    # -- completion --------------------------------------------------------

    def _on_complete(
        self, batch: CoalescedBatch, placement: BacklogDecision, event: Event
    ) -> None:
        end = event.time_ended
        scores = event.meta.get("scores")
        total = batch.total_samples
        batch_id = self._n_batches
        self._n_batches += 1
        profile = self.fault_profile
        offset = 0
        for entry in batch.entries:
            response = self._pending.pop(entry.seq)
            if profile is not None and profile.draw_failure(end):
                offset += entry.batch
                self._fail_request(entry, response, "inference_error")
                continue
            response.status = "ok"
            response.device = placement.device
            response.device_name = placement.device_name
            response.trigger = batch.trigger
            response.batch_id = batch_id
            response.batch_size = total
            response.dispatched_s = batch.formed_s
            response.start_s = event.time_started
            response.end_s = end
            response.energy_j = event.energy.total_j * entry.batch / total
            response.degraded = entry.degraded
            if scores is not None:
                response.scores = scores[offset : offset + entry.batch]
            offset += entry.batch

            self.telemetry.n_served += 1
            latency = end - entry.request.effective_arrival_s
            self.telemetry.record_latency(latency)
            violated = response.deadline_met is False
            if violated:
                self.telemetry.n_violations += 1
            if self.tenants is not None:
                tenant = self.tenants.tenant_for(batch.model)
                if tenant is not None:
                    self.telemetry.tenant(tenant.name).record_served(
                        latency, violated
                    )
            response._fire_done()

        self._in_flight -= len(batch.entries)
        self._in_flight_samples -= total

        self.backlog.record_service(
            batch.model, total, placement.gpu_state, placement.device,
            event.duration_s, now=end,
        )

    def _fail_request(
        self, entry: QueueEntry, response: ServingResponse, reason: str
    ) -> None:
        """One request's launch failed transiently.

        A cluster router that installed :attr:`on_request_failed` takes
        ownership (retry with backoff, or shed); standalone frontends shed
        locally — resolved either way, never lost.
        """
        self.telemetry.n_failed += 1
        hook = self.on_request_failed
        if hook is not None and hook(entry, response, reason):
            return
        response.status = "shed"
        response.shed_reason = reason
        self.telemetry.n_shed += 1
        self._record_tenant_shed(entry.request.model)
        response._fire_done()

    def _record_tenant_shed(self, model: str) -> None:
        if self.tenants is None:
            return
        tenant = self.tenants.tenant_for(model)
        if tenant is not None:
            self.telemetry.tenant(tenant.name).record_shed()

    # -- fault handling (crash / dropout / throttle) -----------------------

    def crash(self) -> None:
        """Fail-stop this frontend, silently (nobody is notified here).

        Queued entries and aborted in-flight work move to the lost limbo;
        their responses stay pending.  Recovery of the *work* is the
        cluster layer's job: a health check notices the crash, collects
        the limbo via :meth:`collect_lost` and re-adopts each entry on a
        surviving node exactly once.
        """
        if self.crashed:
            raise SchedulerError("frontend is already crashed")
        self.crashed = True
        for entry in self.drain_queued():
            self._lost[entry.seq] = entry
        for worker in self._workers.values():
            for batch, _decision in worker.abort_in_flight():
                for entry in batch.entries:
                    self._pending.pop(entry.seq, None)
                    self._lost[entry.seq] = entry
        self._in_flight = 0
        self._in_flight_samples = 0
        for model in self._timer_at:
            self._timer_at[model] = None

    def restart(self) -> None:
        """Bring a crashed frontend back up (empty queues, cold timers).

        Un-collected limbo entries stay collectable — a crash shorter than
        the heartbeat interval still loses no work.
        """
        if not self.crashed:
            raise SchedulerError("frontend is not crashed")
        self.crashed = False

    def collect_lost(self) -> "list[QueueEntry]":
        """Take every limboed entry (submission order) for re-adoption.

        Physically removes the entries, so each can be collected exactly
        once no matter how many sweeps race over the same crash.
        """
        lost = sorted(self._lost.values(), key=lambda e: e.seq)
        for entry in lost:
            self._pending.pop(entry.seq, None)
        self._lost.clear()
        return lost

    def drop_device(self, device_class: str) -> int:
        """Take one device class out of service (e.g. the dGPU vanished).

        Masks the class out of the backlog scheduler's ranking (stale
        decision-cache cells are invalidated), re-targets the degrade
        path, aborts the device's in-flight launches and re-admits their
        requests on the remaining devices.  Returns how many requests were
        re-admitted.  Raises if the drop would leave no device.
        """
        if device_class in self._dropped:
            raise SchedulerError(f"device class {device_class!r} is already dropped")
        present = {
            d.device_class.value
            for d in self.backlog.scheduler.context.devices
        }
        if device_class not in present:
            raise SchedulerError(
                f"no {device_class!r} device on this node (has: {sorted(present)})"
            )
        mask = frozenset(present - self._dropped - {device_class})
        if not mask:
            raise SchedulerError(
                f"dropping {device_class!r} would leave no device to place on"
            )
        self.backlog.set_device_mask(mask)
        self._dropped.add(device_class)
        self._recompute_degrade_target()
        readmitted = 0
        for name, worker in list(self._workers.items()):
            if worker.device_class != device_class:
                continue
            for entry, response in self.abort_device(name):
                self._readmit(entry, response)
                readmitted += 1
        return readmitted

    def restore_device(self, device_class: str) -> None:
        """Fold a previously dropped device class back into service."""
        if device_class not in self._dropped:
            raise SchedulerError(f"device class {device_class!r} is not dropped")
        self._dropped.discard(device_class)
        if self._dropped:
            present = {
                d.device_class.value
                for d in self.backlog.scheduler.context.devices
            }
            self.backlog.set_device_mask(frozenset(present - self._dropped))
        else:
            self.backlog.set_device_mask(None)
        self._recompute_degrade_target()

    def set_throttle(self, device_class: str, multiplier: float) -> None:
        """Thermal slowdown: stretch every launch on a device class.

        ``multiplier`` scales launch latency (1.0 restores nominal speed);
        the stretched time also holds the device's command-queue clock, so
        the backlog the scheduler reads reflects the slowdown.
        """
        if multiplier < 1.0:
            raise ValueError(f"throttle multiplier must be >= 1.0, got {multiplier}")
        hit = False
        for worker in self._workers.values():
            if worker.device_class == device_class:
                worker.throttle = float(multiplier)
                hit = True
        if not hit:
            raise SchedulerError(f"no {device_class!r} device on this node")

    def cancel_queued(self, request_id: int) -> "QueueEntry | None":
        """Pull a still-cancellable request back out (timeout rescue).

        Finds the entry in a serving queue or the crash limbo and removes
        it physically; returns None when the request is in flight (it will
        complete normally — cancelling would risk double execution) or not
        here at all.  The caller owns a returned entry exclusively.
        """
        for model, queue in self._queues.items():
            entry = queue.remove(request_id)
            if entry is not None:
                self._pending.pop(entry.seq, None)
                self.telemetry.record_depth(model, self.loop.now, len(queue))
                return entry
        for seq, entry in self._lost.items():
            if entry.request.request_id == request_id:
                del self._lost[seq]
                self._pending.pop(seq, None)
                return entry
        return None

    def _recompute_degrade_target(self) -> None:
        candidates = [
            d for d in self.backlog.scheduler.context.devices
            if d.device_class.value not in self._dropped
        ]
        self._cheapest = min(candidates, key=lambda d: d.spec.busy_watts)

    def _readmit(self, entry: QueueEntry, response: ServingResponse) -> None:
        """Re-run arrival for a rescued entry, keeping its response.

        The original request (arrival time, absolute deadline) is
        preserved; admission re-runs, so a rescued request can still be
        shed — resolved on its original handle, never lost.
        """
        readmitted = QueueEntry(
            request=entry.request, enqueued_s=self.loop.now, seq=self._seq, x=entry.x
        )
        self._seq += 1
        self._pending[readmitted.seq] = response
        self._on_arrival(readmitted)

    def readmit(self, entry: QueueEntry, response: ServingResponse) -> None:
        """Re-admit an aborted request on its original response handle.

        The partition manager pairs this with :meth:`abort_device`: abort
        collects (entry, response) pairs off a retiring partition, the
        topology changes, then each pair re-runs arrival here — exactly
        once, on whatever devices now exist.
        """
        self._readmit(entry, response)

    # -- device topology (partition split/merge) ---------------------------

    def attach_device(self, device, ready_at: "float | None" = None) -> DeviceWorker:
        """Admit a new logical device (e.g. a freshly split partition).

        Registers it with the scheduler (context + command queue), loads
        every deployed model onto it, optionally holds its queue clock at
        ``ready_at`` (the reconfiguration cost — work placed on the new
        partition cannot start before the split completes), spins up its
        worker and invalidates cached placement decisions.
        """
        scheduler = self.backlog.scheduler
        queue = scheduler.register_device(device)
        scheduler.dispatcher.attach_device(device)
        if ready_at is not None and queue.current_time < ready_at:
            queue.advance_to(ready_at)
        worker = self._make_worker(device)
        self._workers[device.name] = worker
        self.backlog.notify_repartition()
        self._recompute_degrade_target()
        return worker

    def detach_device(self, device_name: str) -> None:
        """Retire a logical device by exact name.

        Refuses while launches are in flight — call :meth:`abort_device`
        first and :meth:`readmit` the collected pairs after the topology
        settles.  Raises if the device is unknown or the last one.
        """
        worker = self.worker_for(device_name)
        if worker.in_flight:
            raise SchedulerError(
                f"device {device_name!r} has {worker.in_flight} launch(es) "
                f"in flight; abort_device() first"
            )
        scheduler = self.backlog.scheduler
        scheduler.unregister_device(device_name)
        scheduler.dispatcher.detach_device(device_name)
        del self._workers[device_name]
        self.backlog.notify_repartition()
        self._recompute_degrade_target()

    def abort_device(
        self, device_name: str
    ) -> "list[tuple[QueueEntry, ServingResponse]]":
        """Abort one device's in-flight launches; collect their requests.

        Every aborted entry leaves the in-flight ledger; entries whose
        response is still pending come back paired for :meth:`readmit`
        (entries already orphaned by a drain are simply dropped).
        """
        worker = self.worker_for(device_name)
        collected: "list[tuple[QueueEntry, ServingResponse]]" = []
        for batch, _decision in worker.abort_in_flight():
            for entry in batch.entries:
                self._in_flight -= 1
                self._in_flight_samples -= entry.batch
                response = self._pending.pop(entry.seq, None)
                if response is not None:
                    collected.append((entry, response))
        return collected

    def worker_for(self, device_name: str) -> DeviceWorker:
        """The worker serving one device (by exact spec name)."""
        try:
            return self._workers[device_name]
        except KeyError:
            known = ", ".join(sorted(self._workers)) or "<none>"
            raise SchedulerError(
                f"no worker for device {device_name!r} (has: {known})"
            ) from None

    # -- cluster hooks (drain / transfer) ----------------------------------

    def drain_queued(self) -> "list[QueueEntry]":
        """Pop every queued request for re-routing elsewhere (drain hook).

        In-flight batches are untouched and complete normally — that is the
        graceful half of a node drain.  Returned entries are forgotten by
        this frontend (their original :class:`ServingResponse`s stay
        pending); the caller re-binds each request to another frontend via
        :meth:`adopt`, preserving exactly-once delivery one layer up.
        """
        now = self.loop.now
        drained: list[QueueEntry] = []
        for model, queue in self._queues.items():
            if not len(queue):
                continue
            while len(queue):
                entry = queue.pop()
                self._pending.pop(entry.seq, None)
                drained.append(entry)
            self._timer_at[model] = None   # armed timers become stale no-ops
            self.telemetry.record_depth(model, now, 0)
        drained.sort(key=lambda e: e.seq)  # original submission order
        return drained

    def adopt(self, entry: QueueEntry) -> ServingResponse:
        """Admit a request drained from another frontend (transfer hook).

        The original request object — arrival time, absolute deadline —
        is preserved, so end-to-end latency keeps counting from its first
        arrival; only the enqueue time resets to now for coalescing.  The
        transfer re-runs this node's admission, so a full queue here can
        still shed it (resolved, never lost).
        """
        request = entry.request
        self._require_spec(request.model)
        adopted = QueueEntry(
            request=request, enqueued_s=self.loop.now, seq=self._seq, x=entry.x
        )
        self._seq += 1
        response = ServingResponse(request)
        self._pending[adopted.seq] = response
        self._on_arrival(adopted)
        return response

    # -- introspection -----------------------------------------------------

    @property
    def n_pending(self) -> int:
        """Requests submitted but not yet resolved (queued or in flight)."""
        return len(self._pending)

    @property
    def queued_samples(self) -> int:
        """Samples sitting in the serving queues (O(#models) counters)."""
        return sum(q.total_samples for q in self._queues.values())

    @property
    def outstanding_samples(self) -> int:
        """Samples accepted and unresolved: queued plus in flight.

        The same quantity as ``node_stats().outstanding_samples`` without
        building the full snapshot — balancers tiebreak on this once per
        node per routing decision.
        """
        return self._in_flight_samples + self.queued_samples

    def queue_depth(self, model: str) -> int:
        return len(self._queues[self._require_spec(model).name])

    def node_stats(self) -> NodeStats:
        """Cheap load snapshot for cluster-level polling.

        Unlike :meth:`stats` (full telemetry, all-time percentiles), this
        reads only counters, queue lengths and the bounded rolling latency
        window — safe to call once per routing decision.
        """
        now = self.loop.now
        depths = {m: len(q) for m, q in self._queues.items()}
        return NodeStats(
            queued=sum(depths.values()),
            queued_samples=sum(q.total_samples for q in self._queues.values()),
            in_flight=self._in_flight,
            in_flight_samples=self._in_flight_samples,
            served=self.telemetry.n_served,
            shed=self.telemetry.n_shed,
            recent_p99_s=self.telemetry.recent.p99_s,
            backlog_s=max(
                (w.backlog_s(now) for w in self._workers.values()), default=0.0
            ),
            virtual_time_s=now,
            queue_depths=depths,
        )

    def stats(self) -> dict:
        """Telemetry snapshot plus per-layer counters."""
        return {
            **self.telemetry.snapshot(),
            "pending": self.n_pending,
            "virtual_time_s": self.loop.now,
            "spills": self.backlog.n_spills,
            "decision_cache": self.backlog.cache_stats(),
            "queues": {m: len(q) for m, q in sorted(self._queues.items())},
            "admission": {
                m: c.stats() for m, c in sorted(self._admission.items())
            },
            "workers": {
                name: w.stats() for name, w in sorted(self._workers.items())
            },
        }
