"""Per-model request queues with deadlines: FIFO and earliest-deadline-first.

The serving frontend holds one bounded queue per deployed model.  A queue
stores :class:`QueueEntry` wrappers (the request, its absolute deadline,
when it was enqueued, optionally its host samples); the discipline decides
*pop order only* — admission bounds length, the coalescer decides *when*
to pop, and the deadline timer is always anchored at the oldest enqueue
time regardless of discipline.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.errors import SchedulerError
from repro.workloads.requests import InferenceRequest

__all__ = ["QueueEntry", "RequestQueue", "FIFOQueue", "EDFQueue", "make_queue"]


@dataclass(frozen=True, slots=True)
class QueueEntry:
    """One queued request plus its serving-side bookkeeping."""

    request: InferenceRequest
    enqueued_s: float
    seq: int                      # frontend-global submission order
    x: "np.ndarray | None" = field(default=None, compare=False)
    degraded: bool = False        # routed via the degrade (shed-to-cheap) path

    @property
    def deadline_s(self) -> "float | None":
        """Absolute completion deadline (None = best effort)."""
        return self.request.deadline_s

    @property
    def batch(self) -> int:
        """Samples in this request."""
        return self.request.batch

    def slack_s(self, now: float) -> float:
        """Seconds until the deadline (inf without one; negative if past)."""
        if self.deadline_s is None:
            return float("inf")
        return self.deadline_s - now


class RequestQueue:
    """Bounded per-model queue; subclasses fix the pop discipline."""

    discipline = "abstract"

    def __init__(self, model: str, capacity: "int | None" = None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.model = model
        self.capacity = capacity
        # O(1) load accounting: the frontend reads total_samples and
        # oldest_enqueued_s once per routing probe / timer arm, so neither
        # may walk the queue.  The arrival heap is lazy: pops mark their
        # (enqueued_s, seq) key removed and the heap top is cleaned on read.
        self._total_samples = 0
        self._arrival_heap: "list[tuple[float, int]]" = []
        self._arrival_removed: "dict[tuple[float, int], int]" = {}

    # -- discipline hooks (subclass responsibility) ------------------------

    def _append(self, entry: QueueEntry) -> None:
        raise NotImplementedError

    def _popleft(self) -> QueueEntry:
        raise NotImplementedError

    def _peek(self) -> QueueEntry:
        raise NotImplementedError

    def _remove(self, request_id: str) -> "QueueEntry | None":
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __iter__(self):
        raise NotImplementedError

    # -- shared API --------------------------------------------------------

    @property
    def full(self) -> bool:
        """Whether another push would exceed capacity."""
        return self.capacity is not None and len(self) >= self.capacity

    def push(self, entry: QueueEntry) -> None:
        """Enqueue; raises :class:`SchedulerError` when at capacity.

        Admission control checks :attr:`full` *before* pushing — a raise
        here means the frontend wiring is wrong, not that load is high.
        """
        if self.full:
            raise SchedulerError(
                f"queue for {self.model!r} is at capacity ({self.capacity})"
            )
        self._append(entry)
        self._total_samples += entry.batch
        heapq.heappush(self._arrival_heap, (entry.enqueued_s, entry.seq))

    def pop(self) -> QueueEntry:
        """Dequeue the next entry under this queue's discipline."""
        if not len(self):
            raise SchedulerError(f"queue for {self.model!r} is empty")
        entry = self._popleft()
        self._total_samples -= entry.batch
        key = (entry.enqueued_s, entry.seq)
        removed = self._arrival_removed
        removed[key] = removed.get(key, 0) + 1
        return entry

    def peek(self) -> QueueEntry:
        """The entry :meth:`pop` would return, without removing it."""
        if not len(self):
            raise SchedulerError(f"queue for {self.model!r} is empty")
        return self._peek()

    def remove(self, request_id: str) -> "QueueEntry | None":
        """Remove one entry out of discipline order (None when absent).

        The rescue path for timeouts and device dropouts: a request that
        is still *queued* can be pulled back and retried elsewhere without
        any risk of double execution.  O(n) per call — fault handling is
        rare by construction, so the hot push/pop counters stay O(1) and
        pay nothing for this capability.
        """
        entry = self._remove(request_id)
        if entry is None:
            return None
        self._total_samples -= entry.batch
        key = (entry.enqueued_s, entry.seq)
        removed = self._arrival_removed
        removed[key] = removed.get(key, 0) + 1
        return entry

    @property
    def total_samples(self) -> int:
        """Samples summed over all queued requests (O(1) counter)."""
        return self._total_samples

    def oldest_enqueued_s(self) -> "float | None":
        """Earliest enqueue time among waiting entries (None if empty).

        This anchors the coalescer's max-wait timer: even under EDF pop
        order, no request may wait longer than max_wait.  Amortized O(1):
        the lazy arrival heap's top is exact once popped keys are drained.
        """
        if not len(self):
            return None
        heap, removed = self._arrival_heap, self._arrival_removed
        while heap:
            count = removed.get(heap[0], 0)
            if not count:
                break
            if count == 1:
                del removed[heap[0]]
            else:
                removed[heap[0]] = count - 1
            heapq.heappop(heap)
        return heap[0][0]


class FIFOQueue(RequestQueue):
    """Arrival-order queue — the throughput-friendly default."""

    discipline = "fifo"

    def __init__(self, model: str, capacity: "int | None" = None):
        super().__init__(model, capacity)
        self._entries: deque[QueueEntry] = deque()

    def _append(self, entry: QueueEntry) -> None:
        self._entries.append(entry)

    def _popleft(self) -> QueueEntry:
        return self._entries.popleft()

    def _peek(self) -> QueueEntry:
        return self._entries[0]

    def _remove(self, request_id: str) -> "QueueEntry | None":
        for i, entry in enumerate(self._entries):
            if entry.request.request_id == request_id:
                del self._entries[i]
                return entry
        return None

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)


class EDFQueue(RequestQueue):
    """Earliest-deadline-first queue; deadline-less entries rank last.

    Ties (equal deadlines, and all best-effort traffic) break by
    submission order, so EDF over a deadline-free stream degrades to FIFO.
    """

    discipline = "edf"

    def __init__(self, model: str, capacity: "int | None" = None):
        super().__init__(model, capacity)
        self._heap: list[tuple[float, int, QueueEntry]] = []
        self._sorted_view: "list[tuple[float, int, QueueEntry]] | None" = None

    @staticmethod
    def _key(entry: QueueEntry) -> tuple[float, int]:
        deadline = entry.deadline_s if entry.deadline_s is not None else float("inf")
        return (deadline, entry.seq)

    def _append(self, entry: QueueEntry) -> None:
        heapq.heappush(self._heap, (*self._key(entry), entry))
        self._sorted_view = None

    def _popleft(self) -> QueueEntry:
        self._sorted_view = None
        return heapq.heappop(self._heap)[2]

    def _peek(self) -> QueueEntry:
        return self._heap[0][2]

    def _remove(self, request_id: str) -> "QueueEntry | None":
        heap = self._heap
        for i, (_, _, entry) in enumerate(heap):
            if entry.request.request_id == request_id:
                heap[i] = heap[-1]
                heap.pop()
                if i < len(heap):
                    heapq.heapify(heap)
                self._sorted_view = None
                return entry
        return None

    def __len__(self) -> int:
        return len(self._heap)

    def __iter__(self):
        # Deadline-order traversal over a sorted view that is computed once
        # and reused until the next push/pop (iterating a heap copy used to
        # cost a full sort per call, on every stats read).
        if self._sorted_view is None:
            self._sorted_view = sorted(self._heap, key=lambda t: t[:2])
        return (entry for _, _, entry in self._sorted_view)


_DISCIPLINES = {"fifo": FIFOQueue, "edf": EDFQueue}


def make_queue(
    discipline: str, model: str, capacity: "int | None" = None
) -> RequestQueue:
    """Build a queue by discipline name ('fifo' | 'edf')."""
    try:
        cls = _DISCIPLINES[discipline]
    except KeyError:
        known = ", ".join(sorted(_DISCIPLINES))
        raise ValueError(
            f"unknown queue discipline {discipline!r}; known: {known}"
        ) from None
    return cls(model, capacity)
