"""Per-device workers: coalesced batches onto command queues, on the loop.

A :class:`DeviceWorker` is the execution stage of the serving frontend:
it owns one device's :class:`~repro.ocl.queue.CommandQueue`, accepts
placed :class:`~repro.serving.coalescer.CoalescedBatch`es, launches them
(timing/energy always; real forward passes when every merged request
carries host samples), and schedules a completion callback on the event
loop at the launch's virtual end time.  Batches dispatch in arrival order
on the in-order queue, so the queue's clock running ahead of ``loop.now``
*is* the device backlog — the same quantity
:class:`~repro.sched.backlog.BacklogAwareScheduler` reads when placing.
"""

from __future__ import annotations

from functools import partial
from typing import Callable

import numpy as np

from repro.ocl.event import Event
from repro.sched.backlog import BacklogDecision
from repro.sched.dispatcher import Dispatcher
from repro.serving.coalescer import CoalescedBatch
from repro.sim.engine import EventLoop

__all__ = ["DeviceWorker"]


class DeviceWorker:
    """Serializes coalesced batches onto one device's command queue."""

    def __init__(
        self,
        loop: EventLoop,
        device_name: str,
        device_class: str,
        command_queue,
        dispatcher: Dispatcher,
        on_complete: "Callable[[CoalescedBatch, BacklogDecision, Event], None]",
    ):
        self.loop = loop
        self.device_name = device_name
        self.device_class = device_class
        self.command_queue = command_queue
        self.dispatcher = dispatcher
        self.on_complete = on_complete
        self.n_batches = 0
        self.n_requests = 0
        self.n_samples = 0
        self.n_aborted = 0
        self.busy_s = 0.0
        # Thermal throttle: a latency multiplier applied to every launch
        # while > 1.0 (fault injection's slowdown windows).  At exactly 1.0
        # the launch path is untouched, so fault-free runs stay
        # digit-identical.
        self.throttle = 1.0
        # Shared-bandwidth contention (partitioned accelerators): an
        # optional ``callable(now) -> multiplier >= 1`` evaluated at launch
        # time — the partition manager installs one per partition that
        # counts busy sibling partitions.  None (the default) leaves the
        # launch path untouched.
        self.contention = None
        # In-flight ledger: launch id -> (batch, decision, event, handle).
        # Completion pops its entry; a crash aborts every entry and cancels
        # the pending completion callbacks, so aborted work can be
        # re-adopted elsewhere without ever completing twice.
        self._inflight: "dict[int, tuple]" = {}
        self._launch_ids = iter(range(0, 2**62))

    def backlog_s(self, now: float) -> float:
        """Seconds of already-dispatched work still ahead of ``now``."""
        return max(0.0, self.command_queue.current_time - now)

    @staticmethod
    def _merged_input(batch: CoalescedBatch) -> "np.ndarray | None":
        """One concatenated host array, iff every request carries samples."""
        arrays = [e.x for e in batch.entries]
        if any(a is None for a in arrays):
            return None
        return np.concatenate([np.asarray(a, dtype=np.float32) for a in arrays])

    def execute(self, batch: CoalescedBatch, decision: BacklogDecision) -> Event:
        """Launch one coalesced batch; completion fires on the event loop.

        The launch is enqueued immediately (the in-order command queue
        carries the backlog), and ``on_complete(batch, decision, event)``
        is scheduled at the event's virtual end time.
        """
        if decision.device_name != self.device_name:
            raise ValueError(
                f"batch placed on {decision.device_name!r} handed to worker "
                f"for {self.device_name!r}"
            )
        now = self.loop.now
        cq = self.command_queue
        if cq.current_time < now:
            cq.advance_to(now)
        kernel = self.dispatcher.kernel_for(self.device_name, batch.model)
        merged = self._merged_input(batch)
        if merged is not None and cq.execute_kernels:
            event = cq.enqueue_inference(kernel, merged)
        else:
            event = cq.enqueue_inference_virtual(kernel, batch.total_samples)

        stretch = self.throttle
        if self.contention is not None:
            stretch *= self.contention(now)
        if stretch != 1.0:
            # Thermal slowdown and/or sibling-partition contention: stretch
            # the compute window and hold the command-queue clock at the
            # stretched end, so both the event's observable latency and the
            # backlog the scheduler reads tell the same (slower) story.
            extra = (stretch - 1.0) * (event.time_ended - event.time_started)
            event.time_ended += extra
            cq.advance_to(event.time_ended)

        self.n_batches += 1
        self.n_requests += len(batch)
        self.n_samples += batch.total_samples
        self.busy_s += event.duration_s

        launch_id = next(self._launch_ids)
        handle = self.loop.schedule(
            event.time_ended,
            partial(self._fire_complete, launch_id, batch, decision, event),
            label="complete",
        )
        self._inflight[launch_id] = (batch, decision, event, handle)
        return event

    def _fire_complete(
        self,
        launch_id: int,
        batch: CoalescedBatch,
        decision: BacklogDecision,
        event: Event,
        _loop=None,
    ) -> None:
        if self._inflight.pop(launch_id, None) is None:
            return  # aborted by a crash; the work was re-adopted elsewhere
        self.on_complete(batch, decision, event)

    def abort_in_flight(self) -> "list[tuple[CoalescedBatch, BacklogDecision]]":
        """Abandon every launch that has not completed yet (node crash).

        Cancels the pending completion callbacks and empties the ledger;
        returns the (batch, decision) pairs so the caller can put their
        requests back into play exactly once.
        """
        aborted = []
        for batch, decision, _event, handle in self._inflight.values():
            self.loop.cancel(handle)
            aborted.append((batch, decision))
        self._inflight.clear()
        self.n_aborted += len(aborted)
        return aborted

    @property
    def in_flight(self) -> int:
        """Launched batches whose completion has not fired yet."""
        return len(self._inflight)

    def stats(self) -> dict:
        """Worker counters for the frontend's stats() rollup."""
        return {
            "batches": self.n_batches,
            "requests": self.n_requests,
            "samples": self.n_samples,
            "busy_s": self.busy_s,
        }
