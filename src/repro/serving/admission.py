"""Admission control: protect the served from the unservable.

Under the overloads the paper motivates (§I "application overloads"),
accepting every request makes *every* request late.  The controller bounds
each model's queue and — when a request carries a deadline — rejects work
whose estimated completion time already blows the SLO, using the backlog
scheduler's *learned* service times (no oracle previews).  Two shed modes:

* **reject** — the request is refused outright (the caller sees 'shed');
* **degrade** — the request bypasses the queue and runs immediately on the
  cheapest (lowest-power) device: strictly worse placement, but an answer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serving.queues import RequestQueue
from repro.workloads.requests import InferenceRequest

__all__ = ["AdmissionDecision", "AdmissionController"]


@dataclass(frozen=True, slots=True)
class AdmissionDecision:
    """Outcome of one admission check."""

    action: str                        # 'accept' | 'shed' | 'degrade'
    reason: str                        # 'ok' | 'queue_full' | 'deadline_unmeetable'
    est_completion_s: "float | None" = None   # absolute est. completion, if computed

    @property
    def admitted(self) -> bool:
        return self.action == "accept"


class AdmissionController:
    """Bounded queues + estimated-completion-time (ECT) rejection.

    Parameters
    ----------
    degrade:
        When True, work that would be shed is degraded to the cheapest
        device instead of dropped.
    ect_margin:
        Safety factor on the completion estimate before comparing against
        the deadline (>1 sheds earlier, <1 is optimistic).  The estimate
        itself is conservative only insofar as the learned service table
        is; a cold table estimates zero and admits everything.
    """

    def __init__(self, degrade: bool = False, ect_margin: float = 1.0):
        if ect_margin <= 0.0:
            raise ValueError(f"ect_margin must be positive, got {ect_margin}")
        self.degrade = degrade
        self.ect_margin = ect_margin
        self.n_accepted = 0
        self.n_shed = 0
        self.n_degraded = 0

    def _refuse(self, reason: str, est: "float | None") -> AdmissionDecision:
        if self.degrade:
            self.n_degraded += 1
            return AdmissionDecision("degrade", reason, est)
        self.n_shed += 1
        return AdmissionDecision("shed", reason, est)

    def admit(
        self,
        request: InferenceRequest,
        queue: RequestQueue,
        now: float,
        est_delay_s: "float | None" = None,
    ) -> AdmissionDecision:
        """Decide one request's fate at its arrival instant.

        ``est_delay_s`` is the backlog scheduler's estimated wait+service
        delay from ``now`` (see ``BacklogAwareScheduler.estimate_completion``);
        pass None to skip the ECT check (e.g. before any feedback exists).
        """
        if queue.full:
            return self._refuse("queue_full", None)
        if request.deadline_s is not None and est_delay_s is not None:
            est_completion = now + est_delay_s * self.ect_margin
            if est_completion > request.deadline_s:
                return self._refuse("deadline_unmeetable", est_completion)
        self.n_accepted += 1
        return AdmissionDecision(
            "accept",
            "ok",
            None if est_delay_s is None else now + est_delay_s,
        )

    def stats(self) -> dict:
        """Counters for the frontend's stats() rollup."""
        return {
            "accepted": self.n_accepted,
            "shed": self.n_shed,
            "degraded": self.n_degraded,
        }
